"""IntBitset / FrozenIntBitset: set semantics, algebra, serialization.

The bitset is a drop-in for the protocols' ``set`` state, so these
tests check it against the reference semantics of the built-in ``set``
under randomized operation sequences, plus the identities the agreement
fold relies on (idempotence, absorption, frozen-snapshot isolation).
"""

import random

import pytest

from repro.sim.bitset import FrozenIntBitset, IntBitset

# ---- construction and basic queries ---------------------------------------


def test_empty():
    b = IntBitset()
    assert len(b) == 0
    assert not b
    assert list(b) == []
    assert 0 not in b


def test_from_iterable_and_membership():
    b = IntBitset.from_iterable([5, 1, 9, 1])
    assert sorted(b) == [1, 5, 9]
    assert len(b) == 3
    assert 5 in b and 2 not in b and -1 not in b


def test_from_range_matches_range():
    assert list(IntBitset.from_range(3, 9)) == list(range(3, 9))
    assert list(IntBitset.from_range(7, 7)) == []
    assert list(IntBitset.from_range(9, 3)) == []
    assert list(IntBitset.from_range(0, 1)) == [0]


def test_singleton():
    b = IntBitset.singleton(12)
    assert list(b) == [12]


def test_negative_members_rejected():
    with pytest.raises(ValueError):
        IntBitset.from_iterable([3, -1])
    with pytest.raises(ValueError):
        IntBitset().add(-4)
    with pytest.raises(ValueError):
        IntBitset.singleton(-1)
    with pytest.raises(ValueError):
        IntBitset(-1)


def test_iteration_is_ascending():
    b = IntBitset.from_iterable([907, 0, 64, 63, 65, 128])
    assert list(b) == sorted(b)
    assert list(b) == [0, 63, 64, 65, 128, 907]


def test_popcount_len():
    assert len(IntBitset.from_range(0, 4096)) == 4096
    assert len(IntBitset.from_iterable([1 << 10, 1 << 16])) == 2


def test_count_below():
    b = IntBitset.from_iterable([0, 3, 7, 64, 100])
    assert b.count_below(0) == 0
    assert b.count_below(1) == 1
    assert b.count_below(8) == 3
    assert b.count_below(101) == 5
    assert b.count_below(-5) == 0


# ---- equality with sets ----------------------------------------------------


def test_equality_with_sets_both_directions():
    b = IntBitset.from_iterable([2, 4, 8])
    assert b == {2, 4, 8}
    assert {2, 4, 8} == b
    assert b == frozenset({2, 4, 8})
    assert b != {2, 4}
    assert not (b == {2, 4, 9})
    assert b.freeze() == {2, 4, 8}
    assert b != [2, 4, 8]  # only set-like equality, not iterable equality


def test_equality_between_forms():
    b = IntBitset.from_iterable([1, 2])
    assert b == b.freeze()
    assert b.freeze() == b
    assert b.freeze() == FrozenIntBitset.from_iterable([2, 1])


# ---- merge identities (what the agreement fold relies on) ------------------


def test_union_intersection_difference_identities():
    a = IntBitset.from_iterable([1, 2, 3, 64])
    b = IntBitset.from_iterable([2, 64, 99])
    empty = IntBitset()
    assert a | empty == a
    assert a & a == a                      # idempotence
    assert a | a == a
    assert a & (a | b) == a                # absorption
    assert a | (a & b) == a
    assert (a - b) | (a & b) == a          # partition
    assert (a - b).isdisjoint(b)
    assert a ^ b == (a | b) - (a & b)
    assert a - b == {1, 3}
    assert a & b == {2, 64}
    assert a | b == {1, 2, 3, 64, 99}


def test_algebra_against_plain_sets_and_iterables():
    a = IntBitset.from_iterable([1, 2, 3])
    assert a | {4} == {1, 2, 3, 4}
    assert a & {2, 3, 9} == {2, 3}
    assert a - [1, 9] == {2, 3}
    assert {1, 9} - a == {9}               # reflected difference
    assert isinstance(a | {4}, IntBitset)


def test_subset_superset_disjoint():
    a = IntBitset.from_iterable([1, 2])
    b = IntBitset.from_iterable([1, 2, 3])
    assert a <= b and a < b and b >= a and b > a
    assert a <= {1, 2} and not (a < {1, 2})
    assert a.issubset({1, 2, 5})
    assert b.issuperset(a)
    assert a.isdisjoint({7, 8}) and not a.isdisjoint({2})


def test_mutators_match_set_semantics():
    b = IntBitset.from_iterable([1, 2])
    b.add(5)
    b.discard(2)
    b.discard(99)           # absent: no-op, like set.discard
    b.discard(-3)           # negative: no-op
    assert b == {1, 5}
    b.remove(1)
    assert b == {5}
    with pytest.raises(KeyError):
        b.remove(1)
    b.update({7, 8})
    b.update(IntBitset.singleton(9))
    assert b == {5, 7, 8, 9}
    b.intersection_update({5, 7, 100})
    assert b == {5, 7}
    b.difference_update([7])
    assert b == {5}
    b.clear()
    assert not b


def test_inplace_operators_mutate_in_place():
    b = IntBitset.from_iterable([1, 2])
    alias = b
    b |= {3}
    b &= {2, 3}
    b -= {2}
    b ^= {2, 3}
    assert alias is b
    assert b == {2}


# ---- snapshots and hashing -------------------------------------------------


def test_freeze_is_isolated_from_later_mutation():
    b = IntBitset.from_iterable([1, 2])
    snap = b.freeze()
    b.add(3)
    b.discard(1)
    assert snap == {1, 2}
    assert b == {2, 3}


def test_frozen_is_hashable_mutable_is_not():
    snap = IntBitset.from_iterable([4, 5]).freeze()
    assert {snap: "x"}[FrozenIntBitset.from_iterable([5, 4])] == "x"
    with pytest.raises(TypeError):
        hash(IntBitset())


def test_thaw_round_trip():
    snap = FrozenIntBitset.from_iterable([3, 1])
    thawed = snap.thaw()
    thawed.add(2)
    assert snap == {1, 3}
    assert thawed == {1, 2, 3}
    assert snap.copy() is snap
    assert snap.freeze() is snap


# ---- serialization ---------------------------------------------------------


@pytest.mark.parametrize("members", [[], [0], [1, 5, 63, 64, 200], list(range(100))])
def test_int_round_trip(members):
    for cls in (IntBitset, FrozenIntBitset):
        b = cls.from_iterable(members)
        assert cls.from_int(b.to_int()) == b
        assert b.to_int() == sum(1 << m for m in set(members))


@pytest.mark.parametrize("members", [[], [0], [7, 8, 9], [1, 5, 63, 64, 200]])
def test_bytes_round_trip(members):
    for cls in (IntBitset, FrozenIntBitset):
        b = cls.from_iterable(members)
        data = b.to_bytes()
        assert isinstance(data, bytes)
        assert cls.from_bytes(data) == b
    assert IntBitset().to_bytes() == b""


def test_repr_lists_members():
    assert repr(IntBitset.from_iterable([2, 1])) == "IntBitset({1, 2})"
    assert repr(FrozenIntBitset()) == "FrozenIntBitset({})"


# ---- randomized equivalence with set ---------------------------------------


def test_randomized_operations_match_set_reference():
    rng = random.Random(20260726)
    for trial in range(30):
        bits = IntBitset()
        ref = set()
        for _ in range(120):
            op = rng.randrange(8)
            if op == 0:
                member = rng.randrange(300)
                bits.add(member)
                ref.add(member)
            elif op == 1:
                member = rng.randrange(300)
                bits.discard(member)
                ref.discard(member)
            elif op in (2, 3, 4):
                other = {rng.randrange(300) for _ in range(rng.randrange(12))}
                if op == 2:
                    bits |= other
                    ref |= other
                elif op == 3:
                    keep = other | {m for m in ref if rng.random() < 0.5}
                    bits &= keep
                    ref &= keep
                else:
                    bits -= other
                    ref -= other
            elif op == 5:
                snap = bits.freeze()
                assert snap == ref
                assert IntBitset.from_bytes(bits.to_bytes()) == ref
            elif op == 6:
                assert len(bits) == len(ref)
                assert sorted(bits) == sorted(ref)
                probe = rng.randrange(300)
                assert (probe in bits) == (probe in ref)
            else:
                bound = rng.randrange(301)
                assert bits.count_below(bound) == sum(1 for m in ref if m < bound)
        assert bits == ref
