"""Tests for Protocol C's level hierarchy and knowledge views."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.levels import LevelStructure, cyclic_successor
from repro.core.views import View
from repro.errors import ConfigurationError

# ---- LevelStructure ---------------------------------------------------------


def test_power_of_two_structure_matches_paper():
    levels = LevelStructure(8)
    assert levels.T == 8 and levels.num_levels == 3
    # level log t: t/2 groups of size 2 ... level 1: one group of size t.
    assert levels.group_size(3) == 2 and levels.num_groups(3) == 4
    assert levels.group_size(2) == 4 and levels.num_groups(2) == 2
    assert levels.group_size(1) == 8 and levels.num_groups(1) == 1


def test_each_process_in_exactly_one_group_per_level():
    levels = LevelStructure(16)
    for level in range(1, levels.num_levels + 1):
        seen = []
        for index in range(levels.num_groups(level)):
            seen.extend(levels.members((level, index)))
        assert seen == list(range(16))


def test_nested_groups():
    levels = LevelStructure(8)
    # A level h+1 group is contained in the level h group of its members.
    for pid in range(8):
        for level in range(1, levels.num_levels):
            outer = set(levels.members_of(pid, level))
            inner = set(levels.members_of(pid, level + 1))
            assert inner <= outer


def test_padding_for_non_power_of_two():
    levels = LevelStructure(6)
    assert levels.T == 8
    assert levels.virtual_pids == [6, 7]


def test_t_one_still_has_a_level():
    levels = LevelStructure(1)
    assert levels.T == 2 and levels.num_levels == 1
    assert levels.virtual_pids == [1]


def test_all_keys_count():
    levels = LevelStructure(16)
    # 2 + 4 + 8 = T/2 + ... = T - 1 ... for T=16: 8+4+2+1 = 15 groups.
    assert len(levels.all_keys()) == 15


def test_invalid_levels_raise():
    levels = LevelStructure(8)
    with pytest.raises(ConfigurationError):
        levels.group_size(0)
    with pytest.raises(ConfigurationError):
        levels.group_size(4)
    with pytest.raises(ConfigurationError):
        levels.members((1, 5))


# ---- cyclic_successor ----------------------------------------------------------


def test_successor_from_none_is_first_candidate():
    assert cyclic_successor([0, 1, 2, 3], None, {0}) == 1


def test_successor_wraps_cyclically():
    assert cyclic_successor([4, 5, 6, 7], 7, set()) == 4
    assert cyclic_successor([4, 5, 6, 7], 5, {6}) == 7


def test_successor_skips_excluded():
    assert cyclic_successor([0, 1, 2, 3], 0, {1, 2}) == 3
    assert cyclic_successor([0, 1, 2, 3], 3, {0}) == 1


def test_successor_none_when_exhausted():
    assert cyclic_successor([0, 1], 0, {0, 1}) is None


@given(
    st.integers(min_value=1, max_value=5).map(lambda k: 2 ** k),
    st.data(),
)
def test_successor_cycles_through_all_candidates(size, data):
    members = list(range(size))
    excluded = set(data.draw(st.lists(st.sampled_from(members), max_size=size - 1)))
    candidates = [m for m in members if m not in excluded]
    current = None
    visited = []
    for _ in candidates:
        current = cyclic_successor(members, current, excluded)
        visited.append(current)
    assert sorted(visited) == candidates  # visits everyone exactly once


# ---- View ----------------------------------------------------------------------


def _view(faulty=(), last=None, work_next=1, work_round=0):
    view = View(work_next=work_next, work_round=work_round)
    view.add_faulty(faulty)
    for key, entry in (last or {}).items():
        view.last_informed[key] = entry
    return view


def test_merge_unions_faults():
    a = _view(faulty={1})
    b = _view(faulty={2, 3})
    assert a.merge(b)
    assert a.faulty == {1, 2, 3}


def test_merge_takes_later_report():
    a = _view(last={(1, 0): (3, 5)})
    b = _view(last={(1, 0): (6, 9)})
    a.merge(b)
    assert a.last_informed[(1, 0)] == (6, 9)
    # Merging an older report back changes nothing.
    assert not a.merge(_view(last={(1, 0): (2, 1)}))


def test_merge_advances_work_pointer_monotonically():
    a = _view(work_next=5, work_round=10)
    a.merge(_view(work_next=3, work_round=4))
    assert a.work_next == 5 and a.work_round == 10
    a.merge(_view(work_next=9, work_round=12))
    assert a.work_next == 9 and a.work_round == 12


def test_reduced_view_excludes_virtual_processes():
    view = _view(faulty={1, 2, 9, 10}, work_next=4)
    assert view.reduced(real_t=8) == 3 + 2  # units 3 + real faults {1,2}


def test_knows_at_least_is_reflexive_and_respects_merge():
    a = _view(faulty={1}, last={(1, 0): (3, 5)}, work_next=2, work_round=1)
    b = _view(faulty={2}, last={(1, 0): (4, 7), (2, 1): (0, 2)}, work_next=3, work_round=2)
    assert a.knows_at_least(a)
    assert not a.knows_at_least(b)
    a.merge(b)
    assert a.knows_at_least(b)


def test_copy_is_independent():
    a = _view(faulty={1}, last={(1, 0): (3, 5)})
    b = a.copy()
    b.add_faulty({9})
    b.last_informed[(1, 0)] = (4, 6)
    assert a.faulty == {1}
    assert a.last_informed[(1, 0)] == (3, 5)


# Hypothesis: merge is a join (commutative, idempotent, monotone).

_keys = st.tuples(st.integers(1, 3), st.integers(0, 3))
_views = st.builds(
    lambda faulty, last, wn, wr: _view(faulty, last, wn, wr),
    st.sets(st.integers(0, 10), max_size=5),
    st.dictionaries(_keys, st.tuples(st.integers(0, 10), st.integers(0, 50)), max_size=4),
    st.integers(1, 20),
    st.integers(0, 50),
)


def _snapshot(view):
    return (
        frozenset(view.faulty),
        frozenset(view.last_informed.items()),
        view.work_next,
        view.work_round,
    )


@given(_views, _views)
def test_merge_commutative(x, y):
    a, b = x.copy(), y.copy()
    a.merge(y)
    b.merge(x)
    assert _snapshot(a) == _snapshot(b)


@given(_views)
def test_merge_idempotent(x):
    a = x.copy()
    assert not a.merge(x.copy())
    assert _snapshot(a) == _snapshot(x)


@given(_views, _views)
def test_merge_result_dominates_both(x, y):
    a = x.copy()
    a.merge(y)
    assert a.knows_at_least(x)
    assert a.knows_at_least(y)
