"""The Section 3 naive knowledge-spreading algorithm and its blow-up."""


from repro import run_protocol
from repro.analysis import bounds
from repro.analysis.scaling import fit_power_law
from repro.sim.adversary import Cascade, KillActive, RandomCrashes
from repro.sim.trace import Trace
from tests.conftest import all_but_one_dead


def _cascade(t):
    return Cascade(
        lead_units=t - 1, redo_units=t // 2, initial_dead=list(range(t // 2 + 1, t))
    )


def test_failure_free_leader_cycles_reports():
    trace = Trace(enabled=True)
    result = run_protocol("C-naive", 16, 4, seed=1, trace=trace)
    assert result.completed
    targets = [
        event.detail[1]
        for event in trace.of_kind("send")
        if event.pid == 0
    ]
    # Reports cycle 1, 2, 3, 1, 2, 3, ... (skipping self).
    assert targets[:6] == [1, 2, 3, 1, 2, 3]


def test_always_completes():
    for seed in range(8):
        result = run_protocol(
            "C-naive", 24, 8, adversary=RandomCrashes(6, max_action_index=12), seed=seed
        )
        assert result.completed


def test_single_active_discipline_holds():
    # strict_invariants is on for C-naive in the registry; a double
    # activation would raise.
    for seed in range(5):
        result = run_protocol(
            "C-naive", 24, 8, adversary=KillActive(7, actions_before_kill=2), seed=seed
        )
        assert result.completed


def test_most_knowledgeable_takes_over():
    trace = Trace(enabled=True)
    result = run_protocol(
        "C-naive", 24, 8, adversary=KillActive(1, actions_before_kill=9), seed=3,
        trace=trace,
    )
    assert result.completed
    activations = trace.activations()
    # The second active process is the recipient of the last report.
    last_target = [
        event.detail[1] for event in trace.of_kind("send") if event.pid == 0
    ][-1]
    assert activations[1][1] == last_target


def test_lone_survivor():
    result = run_protocol("C-naive", 24, 8, adversary=all_but_one_dead(8), seed=4)
    assert result.completed
    assert result.metrics.work_by_process[7] == 24


def test_cascade_forces_quadratic_growth():
    works = []
    for t in (8, 16, 32):
        result = run_protocol("C-naive", 2 * t, t, adversary=_cascade(t), seed=2)
        assert result.completed
        works.append(float(result.metrics.work_total))
    fit = fit_power_law([8.0, 16.0, 32.0], works)
    assert fit.exponent > 1.5  # super-linear: the t^2 term dominates


def test_protocol_c_defeats_the_same_cascade():
    for t in (8, 16, 32):
        result = run_protocol("C", 2 * t, t, adversary=_cascade(t), seed=2)
        assert result.completed
        assert result.metrics.work_total <= bounds.protocol_c_work(2 * t, t).value


def test_naive_beats_nothing_on_messages_under_cascade():
    # Sanity for E15's table: at t = 32 the naive spreader already sends
    # more messages than Protocol C despite C's poll overhead.
    t = 32
    naive = run_protocol("C-naive", 2 * t, t, adversary=_cascade(t), seed=2)
    full = run_protocol("C", 2 * t, t, adversary=_cascade(t), seed=2)
    assert naive.metrics.messages_total > full.metrics.messages_total


def test_t_one():
    result = run_protocol("C-naive", 6, 1, seed=1)
    assert result.completed
    assert result.metrics.messages_total == 0
