"""End-to-end coverage for ``repro serve``: a live localhost server,
the :class:`repro.Client`, the content-addressed cache behind them, and
the duplicate-submission single-execution guarantee."""

import json
import threading

import pytest

from repro.api import Scenario, Sweep
from repro.client import Client, _wire_document
from repro.core.registry import available_protocols
from repro.errors import ConfigurationError, ServerError
from repro.server import ReproServer, scenarios_from_document
from repro.suites import Suite


def _scenario_for(protocol: str) -> Scenario:
    if protocol in available_protocols("async"):
        return Scenario(
            protocol=protocol,
            n=48,
            t=6,
            crash_times={1: 5.0},
            delay="uniform:0.5,3.0",
            failure_detector={"min_delay": 1.0, "max_delay": 4.0},
            seed=2,
        )
    options = {"interval": 4} if protocol == "naive" else {}
    n, t = (24, 6) if protocol.startswith("c") else (32, 8)
    return Scenario(
        protocol=protocol,
        n=n,
        t=t,
        adversary="random:2,max_action_index=8",
        seed=3,
        options=options,
    )


@pytest.fixture(scope="module")
def server():
    with ReproServer(port=0) as live:
        yield live


@pytest.fixture(scope="module")
def client(server):
    return Client(server.url)


# ---- served == direct, every protocol, both engines -------------------------


@pytest.mark.parametrize("protocol", available_protocols())
def test_served_result_is_bit_identical_to_direct(client, protocol):
    scenario = _scenario_for(protocol)
    served = client.run(scenario)
    direct = scenario.run()
    assert served == direct  # full dataclass equality, config echo included
    assert served.to_dict(full=True) == direct.to_dict(full=True)
    # Second submission is a pure cache hit and still identical.
    assert client.run(scenario) == direct


def test_sweep_submission_matches_in_process_run(client):
    sweep = Sweep(
        base=Scenario(protocol="B", n=48, t=8, adversary="random:3"),
        seeds=[0, 1, 2],
    )
    served = client.run_sweep(sweep)
    direct = sweep.run()
    assert len(served) == len(direct) == 3
    assert served.entries == direct.entries
    assert served.worst() == direct.worst()


def test_suite_document_expands_to_every_entry(client):
    suite = {
        "suite": "served",
        "version": 1,
        "entries": [
            {
                "name": "single",
                "scenario": {"protocol": "A", "n": 32, "t": 4, "seed": 5},
            },
            {
                "name": "grid",
                "sweep": {
                    "base": {"protocol": "B", "n": 32, "t": 4},
                    "seeds": [5, 6],
                },
            },
        ],
    }
    snapshot = client.submit(suite)  # bare suite dict; client wraps it
    assert snapshot["kind"] == "suite"
    assert snapshot["runs"] == 3
    results = client.wait(snapshot["job"])
    assert len(results) == 3
    assert all(result.completed for result in results)


# ---- the duplicate-submission load test -------------------------------------


def test_thousand_duplicate_submissions_execute_each_scenario_once():
    distinct = [
        Scenario(protocol="A", n=16, t=4, adversary="random:2", seed=seed)
        for seed in range(8)
    ]
    direct = [scenario.run() for scenario in distinct]
    total, workers = 1000, 16
    with ReproServer(port=0, job_workers=8) as live:
        results = [None] * total
        errors = []

        def pound(worker: int) -> None:
            local = Client(live.url)
            try:
                for i in range(worker, total, workers):
                    results[i] = local.run(distinct[i % len(distinct)])
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(exc)

        threads = [
            threading.Thread(target=pound, args=(worker,))
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        stats = Client(live.url).stats()

    assert errors == []
    # Single-execution proof: 8 distinct keys -> 8 runs, everything else
    # resolved from the cache or an in-flight duplicate.
    assert stats["executions"] == len(distinct)
    assert stats["cache"]["misses"] == len(distinct)
    assert stats["cache"]["stores"] == len(distinct)
    assert stats["cache"]["hits"] + stats["coalesced"] == total - len(distinct)
    assert stats["jobs"]["submitted"] == total
    for i, result in enumerate(results):
        assert result == direct[i % len(distinct)]


# ---- error taxonomy over the wire -------------------------------------------


def test_malformed_scenario_names_field_and_value(client):
    with pytest.raises(ConfigurationError, match="'n'.*'lots'"):
        client.submit({"scenario": {"protocol": "A", "n": "lots", "t": 4}})


def test_unknown_protocol_is_rejected_at_submission(client):
    with pytest.raises(ConfigurationError, match="zz"):
        client.submit({"scenario": {"protocol": "zz", "n": 32, "t": 4}})


def test_document_must_hold_exactly_one_kind(client):
    with pytest.raises(ConfigurationError, match="exactly one"):
        client.submit(
            {
                "scenario": {"protocol": "A", "n": 32, "t": 4},
                "scenarios": [],
            }
        )
    with pytest.raises(ConfigurationError, match="exactly one"):
        client._request("/jobs", {})


def test_unknown_job_and_result_raise_server_error(client):
    with pytest.raises(ServerError, match="no job"):
        client.job("j-999999")
    with pytest.raises(ServerError, match="no cached result"):
        client.result("0" * 64)


def test_unreachable_server_raises_server_error():
    with pytest.raises(ServerError, match="cannot reach"):
        Client("http://127.0.0.1:9", timeout=0.5).stats()


# ---- lookups and counters ---------------------------------------------------


def test_result_endpoint_serves_by_cache_key(client):
    scenario = Scenario(protocol="D", n=32, t=4, seed=11)
    served = client.run(scenario)
    fetched = client.result(scenario.cache_key())
    # /results/<key> has no submitting scenario, so no config echo.
    assert fetched.config is None
    assert fetched.metrics == served.metrics


def test_stats_and_manifest_shapes(client):
    stats = client.stats()
    assert set(stats) >= {"jobs", "executions", "coalesced", "inflight", "cache"}
    assert set(stats["cache"]) >= {"hits", "misses", "stores", "evictions", "size"}
    about = client.about()
    assert about["service"] == "repro-serve"
    assert "a" in about["protocols"]
    assert any(endpoint.startswith("POST /jobs") for endpoint in about["endpoints"])


# ---- wire-format helpers ----------------------------------------------------


def test_wire_document_disambiguates_bare_dicts():
    scenario = {"protocol": "A", "n": 32, "t": 4}
    assert _wire_document(scenario) == {"scenario": scenario}
    sweep = {"base": scenario, "seeds": [1, 2]}
    assert _wire_document(sweep) == {"sweep": sweep}
    suite = {"suite": "named", "version": 1, "entries": []}
    assert _wire_document(suite) == {"suite": suite}
    wrapped = {"scenarios": [scenario]}
    assert _wire_document(wrapped) == wrapped
    with pytest.raises(ConfigurationError, match="Scenario, Sweep, Suite or dict"):
        _wire_document(42)


def test_wire_document_wraps_api_objects():
    scenario = Scenario(protocol="A", n=32, t=4)
    assert _wire_document(scenario) == {"scenario": scenario.to_dict()}
    sweep = Sweep(base=scenario, seeds=[1])
    assert _wire_document(sweep) == {"sweep": sweep.to_dict()}
    suite = Suite(name="s", version=1, entries=[])
    assert _wire_document(suite) == {"suite": suite.to_dict()}


def test_scenarios_from_document_expands_each_kind():
    scenario = {"protocol": "A", "n": 32, "t": 4}
    kind, expanded = scenarios_from_document({"scenario": scenario})
    assert kind == "scenario" and len(expanded) == 1
    kind, expanded = scenarios_from_document(
        {"sweep": {"base": scenario, "seeds": [1, 2, 3]}}
    )
    assert kind == "sweep" and len(expanded) == 3
    kind, expanded = scenarios_from_document({"scenarios": [scenario, scenario]})
    assert kind == "scenarios" and len(expanded) == 2
    with pytest.raises(ConfigurationError, match="non-empty list"):
        scenarios_from_document({"scenarios": []})
    with pytest.raises(ConfigurationError, match="dict"):
        scenarios_from_document([scenario])


# ---- the CLI submit verb ----------------------------------------------------


def test_cli_submit_round_trips_through_a_live_server(server, tmp_path, capsys):
    from repro.__main__ import main

    document = tmp_path / "scenario.json"
    document.write_text(
        json.dumps({"scenario": {"protocol": "B", "n": 48, "t": 8, "seed": 9}})
    )
    code = main(["submit", str(document), "--server", server.url])
    out = capsys.readouterr().out
    assert code == 0
    assert "B" in out and "completed" in out

    code = main(["submit", str(document), "--server", server.url, "--json"])
    captured = capsys.readouterr()
    assert code == 0
    payloads = json.loads(captured.out)
    assert payloads[0]["status"] == "done"
    assert payloads[0]["sources"] == ["cache"]  # second submission hits


def test_cli_submit_unreachable_server_exits_2(tmp_path, capsys):
    from repro.__main__ import main

    document = tmp_path / "scenario.json"
    document.write_text(json.dumps({"scenario": {"protocol": "A", "n": 16, "t": 2}}))
    code = main(["submit", str(document), "--server", "http://127.0.0.1:9"])
    assert code == 2
    assert "error" in capsys.readouterr().err
