"""The seeded chaos harness: deterministic fault injection across the
execution plane, and the graceful-degradation contracts it proves.

Three headline properties (see ``docs/chaos.md``):

1. under worker/handler/journal chaos, every submission to a live
   server terminates with either a bit-identical result or a typed
   error - nothing hangs, nothing is silently lost;
2. a chaos-interrupted campaign resumes to a report bit-identical
   (minus the per-session ``execution`` provenance) to a fault-free run;
3. injected journal damage degrades to skipped-and-counted lines, never
   a crashed replay or a wrong result.

``REPRO_CHAOS_SEED`` overrides the injection seed (the CI
``chaos-smoke`` job pins it); ``REPRO_CHAOS_REPORT`` names a JSON file
to write the harness's fault/outcome summary to (the CI artifact).
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Scenario
from repro.cache import ResultCache
from repro.campaign import CampaignSpec, CampaignState, run_campaign
from repro.campaign.ledger import CampaignLedger
from repro.chaos import (
    INJECTION_POINTS,
    POINT_MODES,
    ChaosInjector,
    ChaosInterrupt,
    chaos_from_spec,
    normalize_chaos_spec,
)
from repro.client import Client
from repro.errors import ConfigurationError, ServerError
from repro.server import ReproServer
from repro.server.jobs import JobStore

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

#: Accumulated by the headline tests, dumped to $REPRO_CHAOS_REPORT.
_REPORT = {"seed": CHAOS_SEED, "sections": {}}


@pytest.fixture(scope="module", autouse=True)
def _chaos_report_artifact():
    yield
    path = os.environ.get("REPRO_CHAOS_REPORT")
    if path:
        with open(path, "w") as handle:
            json.dump(_REPORT, handle, indent=2, sort_keys=True)
            handle.write("\n")


class _ScriptedChaos:
    """A stand-in injector that fires a fixed script of modes at one
    point (deterministic single-mode tests; the real injector draws)."""

    def __init__(self, point, modes):
        self.point = point
        self.modes = list(modes)

    def fire(self, point, detail=""):
        if point != self.point or not self.modes:
            return None
        return self.modes.pop(0)


# ---- spec grammar ----------------------------------------------------


def test_chaos_spec_spellings_canonicalise_identically():
    canonical = {"seed": 7, "rates": {"journal_write": 0.02, "transport": 0.05}}
    assert (
        normalize_chaos_spec("journal_write=0.02,transport=0.05,seed=7")
        == normalize_chaos_spec(
            {"journal_write": 0.02, "transport": 0.05, "seed": 7}
        )
        == normalize_chaos_spec(canonical)
        == canonical
    )
    injector = chaos_from_spec("journal_write=0.02,transport=0.05,seed=7")
    assert normalize_chaos_spec(injector) == canonical
    assert chaos_from_spec(injector) is injector


def test_chaos_spec_without_positive_rates_is_no_injection():
    assert normalize_chaos_spec(None) is None
    assert normalize_chaos_spec("") is None
    assert normalize_chaos_spec("worker=0") is None
    assert chaos_from_spec({"worker": 0.0, "seed": 3}) is None


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("disk=0.1", "'disk'"),
        ("worker", "POINT=RATE"),
        ("worker=lots", "'lots'"),
        ("worker=1.5", "1.5"),
        ("worker=-0.1", "-0.1"),
        ({"seed": 1.5, "worker": 0.1}, "1.5"),
        ({"seed": "many", "worker": 0.1}, "'many'"),
        ({"rates": {"worker": 0.1}, "worker": 0.2}, "mixes"),
        ({"rates": "high"}, "'high'"),
        (42, "int"),
    ],
)
def test_malformed_chaos_specs_name_the_offending_value(spec, fragment):
    with pytest.raises(ConfigurationError) as excinfo:
        normalize_chaos_spec(spec)
    assert fragment in str(excinfo.value)


# ---- injector determinism --------------------------------------------


def test_injector_streams_are_deterministic_and_per_point():
    rates = {"worker": 0.5, "transport": 0.5}
    first = ChaosInjector(rates, seed=CHAOS_SEED)
    second = ChaosInjector(rates, seed=CHAOS_SEED)
    baseline = [first.fire("worker") for _ in range(64)]
    # Interleaving other points' calls must not disturb a point's
    # stream: each point draws from its own seeded RNG.
    for _ in range(17):
        second.fire("transport")
    assert [second.fire("worker") for _ in range(64)] == baseline
    fired = [mode for mode in baseline if mode is not None]
    assert fired  # a 0.5 rate over 64 calls injects something
    assert set(fired) <= set(POINT_MODES["worker"])
    assert first.log.count("worker") == len(fired)
    assert first.log.count("worker", fired[0]) >= 1


def test_injector_rejects_unknown_points_and_logs_events():
    injector = ChaosInjector({"handler": 1.0}, seed=CHAOS_SEED)
    with pytest.raises(ConfigurationError, match="'no_such_point'"):
        injector.fire("no_such_point")
    assert injector.fire("handler", "GET /stats") == "exception"
    snapshot = injector.log.as_dict()
    assert snapshot["total"] == 1
    assert snapshot["by_point"] == {"handler": 1}
    assert snapshot["by_mode"] == {"handler:exception": 1}
    assert snapshot["events"] == [
        {"point": "handler", "mode": "exception", "detail": "GET /stats"}
    ]
    assert set(POINT_MODES) == set(INJECTION_POINTS)


# ---- cache journal under chaos ---------------------------------------


def test_journal_chaos_degrades_to_skipped_lines_never_bad_results(tmp_path):
    path = tmp_path / "cache.jsonl"
    chaos = ChaosInjector({"journal_write": 0.5}, seed=CHAOS_SEED)
    cache = ResultCache(path=path, chaos=chaos)
    expected = {}
    for seed in range(12):
        scenario = Scenario(protocol="A", n=8, t=2, seed=seed)
        key = scenario.cache_key()
        cache.put(key, scenario.run())
        expected[key] = cache.get_payload(key)
    assert chaos.log.count("journal_write") > 0
    assert len(cache) == 12  # the in-memory cache never degrades

    # Replay must never crash and never invent or mutate a result:
    # every surviving entry is bit-identical to what was stored.
    replayed = ResultCache(path=path)
    survivors = 0
    for key, payload in expected.items():
        got = replayed.get_payload(key)
        assert got is None or got == payload
        survivors += got is not None
    assert len(replayed) == survivors <= 12
    damaged = chaos.log.count("journal_write", "torn") + chaos.log.count(
        "journal_write", "partial"
    )
    if damaged:
        assert replayed.stats()["journal_corrupt"] >= 1


# ---- the job store under chaos ---------------------------------------


def test_worker_quarantine_surfaces_typed_error_and_never_caches():
    store = JobStore(
        retries=2,
        retry_backoff=0.0,
        chaos=_ScriptedChaos("worker", ["crash", "crash"]),
    )
    scenario = Scenario(protocol="A", n=8, t=2, seed=0)
    job = store.submit([scenario])
    assert job.wait(30.0)
    assert job.status == "failed"
    error = job.as_dict()["error"]
    assert error["type"] == "InjectedFault"
    assert "chaos" in error["message"]
    assert store.quarantined == 1 and store.retried == 1
    # Quarantine releases the key un-cached...
    assert store.cache.get_payload(scenario.cache_key()) is None
    # ...so a resubmission re-executes from scratch and succeeds.
    job2 = store.submit([scenario])
    assert job2.wait(30.0)
    assert job2.status == "done"
    assert job2.as_dict()["results"][0] == {
        **scenario.run().to_dict(full=True),
        "config": scenario.to_dict(),
    }
    store.close()


# ---- headline: a live server under chaos -----------------------------


def test_chaos_server_every_submission_terminates_bit_identical():
    spec = f"worker=0.3,handler=0.2,journal_write=0.2,seed={CHAOS_SEED}"
    scenarios = [Scenario(protocol="A", n=8, t=2, seed=seed) for seed in range(10)]
    direct = {sc.cache_key(): sc.run() for sc in scenarios}
    outcomes = []
    with ReproServer(port=0, chaos=spec, retries=4, retry_backoff=0.005) as server:
        client = Client(server.url, attempts=8, backoff=0.005)
        for scenario in scenarios:
            try:
                served = client.run(scenario, timeout=60.0)
                assert served == direct[scenario.cache_key()]
                outcomes.append("ok")
            except ServerError:
                outcomes.append("typed-error")
        stats = client.stats()
        report = server.shutdown()
    # Every submission terminated - with a bit-identical result or a
    # typed error - and faults really were injected.
    assert len(outcomes) == len(scenarios)
    assert "ok" in outcomes
    assert report["chaos"]["total"] > 0
    assert report["leaked_keys"] == [] and report["leaked_jobs"] == []
    assert stats["inflight"] == 0
    assert stats["chaos"]["total"] > 0
    _REPORT["sections"]["server"] = {
        "outcomes": {value: outcomes.count(value) for value in set(outcomes)},
        "faults": report["chaos"]["by_mode"],
        "retried": stats["retried"],
        "quarantined": stats["quarantined"],
    }


def test_client_transport_chaos_retries_to_the_same_answer():
    chaos = ChaosInjector({"transport": 0.4}, seed=CHAOS_SEED)
    scenarios = [Scenario(protocol="B", n=16, t=4, seed=seed) for seed in range(5)]
    with ReproServer(port=0) as server:
        client = Client(server.url, attempts=10, backoff=0.001, chaos=chaos)
        for scenario in scenarios:
            assert client.run(scenario, timeout=60.0) == scenario.run()
    assert chaos.log.count("transport") > 0
    _REPORT["sections"]["transport"] = chaos.log.as_dict()["by_mode"]


# ---- rate limiting and quotas ----------------------------------------


def _raw_post(url, document):
    """POST without the client's retry loop; ``(status, body, headers)``."""
    request = urllib.request.Request(
        url + "/jobs",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def test_rate_limit_returns_429_with_retry_after():
    with ReproServer(port=0, rate_limit=1.0, rate_burst=2) as server:
        documents = [
            {"scenario": Scenario(protocol="A", n=8, t=2, seed=seed).to_dict()}
            for seed in range(3)
        ]
        statuses = [_raw_post(server.url, doc)[0] for doc in documents]
        assert statuses[:2] == [200, 200]  # the burst
        status, body, headers = _raw_post(server.url, documents[2])
        assert status == 429
        assert body["error"]["type"] == "ServerError"
        assert int(headers["Retry-After"]) >= 1
        # The client retries a 429 on the server's schedule and lands.
        client = Client(server.url, attempts=4, backoff=0.01)
        result = client.run(Scenario(protocol="A", n=8, t=2, seed=9))
        assert result.completed
        assert client.stats()["throttled"] >= 2


def test_client_quota_exhausts_permanently():
    with ReproServer(port=0, client_quota=2) as server:
        client = Client(server.url, attempts=1)
        for seed in range(2):
            assert client.run(Scenario(protocol="A", n=8, t=2, seed=seed)).completed
        with pytest.raises(ServerError, match="429"):
            client.submit(Scenario(protocol="A", n=8, t=2, seed=5))
        # GETs are not submissions: stats still answer once over quota.
        assert client.stats()["throttled"] == 1


def test_oversized_body_is_a_413_naming_the_limit():
    with ReproServer(port=0, max_body_bytes=256) as server:
        status, body, _ = _raw_post(
            server.url,
            {"scenarios": [Scenario(protocol="A", n=8, t=2, seed=s).to_dict() for s in range(20)]},
        )
        assert status == 413
        assert "256-byte limit" in body["error"]["message"]


# ---- graceful shutdown -----------------------------------------------


def test_readyz_flips_to_503_while_draining_and_submissions_refuse():
    server = ReproServer(port=0).start()
    try:
        with urllib.request.urlopen(server.url + "/readyz", timeout=30.0) as response:
            assert json.loads(response.read())["status"] == "ready"
        with urllib.request.urlopen(server.url + "/healthz", timeout=30.0) as response:
            assert json.loads(response.read())["status"] == "ok"
        server._state.draining = True
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/readyz", timeout=30.0)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "draining"
        status, body, _ = _raw_post(
            server.url, {"scenario": Scenario(protocol="A", n=8, t=2, seed=0).to_dict()}
        )
        assert status == 503
        assert "draining" in body["error"]["message"]
        # Liveness stays honest while draining.
        with urllib.request.urlopen(server.url + "/healthz", timeout=30.0) as response:
            assert response.status == 200
    finally:
        server.shutdown()


class _GatedWorkers:
    """A chaos stand-in that parks every worker execution on an event,
    so the test controls exactly when the drain can finish."""

    def __init__(self):
        self.release = threading.Event()

    def fire(self, point, detail=""):
        if point == "worker":
            self.release.wait(30.0)
        return None


def test_graceful_shutdown_drains_journals_and_releases_long_polls(tmp_path):
    journal = tmp_path / "cache.jsonl"
    server = ReproServer(port=0, cache_path=journal).start()
    gate = _GatedWorkers()
    server.store.chaos = gate  # park executions until the test says go
    client = Client(server.url)
    scenarios = [Scenario(protocol="A", n=8, t=2, seed=seed) for seed in range(4)]
    snapshot = client.submit(
        {"scenarios": [scenario.to_dict() for scenario in scenarios]}
    )
    resolved = {}
    polling = threading.Event()

    def long_poll():
        started = time.monotonic()
        polling.set()
        resolved["results"] = client.wait(snapshot["job"], timeout=60.0)
        resolved["seconds"] = time.monotonic() - started

    poller = threading.Thread(target=long_poll)
    poller.start()
    assert polling.wait(10.0)
    time.sleep(0.1)  # let the long-poll GET reach the server
    # Shutdown blocks on the gated executions; the long-poll is pinned
    # in-flight the whole time, then resolves as the drain completes.
    shutdown_box = {}
    drainer = threading.Thread(
        target=lambda: shutdown_box.update(report=server.shutdown())
    )
    drainer.start()
    time.sleep(0.1)
    assert server.draining and not resolved  # drain started, poll held
    gate.release.set()
    drainer.join(timeout=30.0)
    assert not drainer.is_alive()
    report = shutdown_box["report"]
    poller.join(timeout=30.0)
    assert not poller.is_alive()
    # The long-poll returned promptly with the drained job's results,
    # not after its full timeout.
    assert len(resolved["results"]) == 4
    assert resolved["seconds"] < 30.0
    assert [result.completed for result in resolved["results"]] == [True] * 4
    # Clean drain: nothing leaked, and the drained work is journaled.
    assert report["drained_jobs"] >= 1
    assert report["leaked_keys"] == [] and report["leaked_jobs"] == []
    replayed = ResultCache(path=journal)
    for scenario in scenarios:
        assert replayed.get_payload(scenario.cache_key()) is not None
    # Shutdown is idempotent and the socket really closed.
    assert server.shutdown() is report
    with pytest.raises(ServerError):
        Client(server.url, attempts=1, timeout=2.0).stats()
    _REPORT["sections"]["shutdown"] = {
        "drained_jobs": report["drained_jobs"],
        "leaked_jobs": len(report["leaked_jobs"]),
    }


# ---- headline: chaos-interrupted campaigns resume --------------------


def _campaign_spec():
    return CampaignSpec(
        name="chaos-grid",
        base=Scenario(protocol="A", n=8, t=2, seed=0),
        seeds=list(range(6)),
        chunk_size=2,
    )


def _results_section(report):
    data = report.as_dict()
    data.pop("execution")
    return data


def test_chaos_interrupted_campaign_resumes_bit_identical(tmp_path):
    spec = _campaign_spec()
    baseline = run_campaign(spec, tmp_path / "clean.ledger").report()

    ledger = tmp_path / "chaos.ledger"
    chaos = ChaosInjector({"ledger_append": 1.0}, seed=CHAOS_SEED)
    interrupts = 0
    outcome = None
    for _ in range(60):
        try:
            outcome = run_campaign(spec, ledger, chaos=chaos)
        except ChaosInterrupt:
            interrupts += 1
            continue
        if outcome.complete:
            break
    assert outcome is not None and outcome.complete
    assert interrupts > 0  # at rate 1.0 some appends tore mid-write
    assert chaos.log.count("ledger_append", "torn") == interrupts
    assert _results_section(outcome.report()) == _results_section(baseline)
    # The surviving ledger replays clean for a fresh reader too.
    state = CampaignState.load(spec, ledger)
    assert state.complete
    _REPORT["sections"]["campaign"] = {
        "interrupts": interrupts,
        "fsync_retries": chaos.log.count("ledger_append", "fsync_fail"),
        "bit_identical": True,
    }


def test_ledger_fsync_failure_retries_transparently(tmp_path):
    spec = _campaign_spec()
    chunk = next(iter(spec.chunks()))
    payloads = []
    for scenario in chunk.scenarios:
        payload = scenario.run().to_dict(full=True)
        payload.pop("config", None)
        payloads.append(payload)
    path = tmp_path / "fsync.ledger"
    ledger = CampaignLedger(
        path, spec, chaos=_ScriptedChaos("ledger_append", ["fsync_fail"])
    )
    ledger.append_chunk(chunk, payloads)
    assert ledger.fsync_retries == 1
    state = CampaignState.load(spec, path)
    assert state.torn_tails == 0
    assert set(state.completed) == {chunk.index}


def test_torn_ledger_append_is_a_simulated_kill_that_resumes(tmp_path):
    spec = _campaign_spec()
    path = tmp_path / "torn.ledger"
    torn = CampaignLedger(
        path, spec, chaos=_ScriptedChaos("ledger_append", ["torn"])
    )
    chunk = next(iter(spec.chunks()))
    payloads = []
    for scenario in chunk.scenarios:
        payload = scenario.run().to_dict(full=True)
        payload.pop("config", None)
        payloads.append(payload)
    with pytest.raises(ChaosInterrupt, match="torn"):
        torn.append_chunk(chunk, payloads)
    # Exactly the shape replay tolerates: a torn final line, 0 chunks.
    state = CampaignState.load(spec, path)
    assert state.torn_tails == 1 and state.chunks_done == 0
    # A later session trims the fragment and checkpoints cleanly.
    CampaignLedger(path, spec).append_chunk(chunk, payloads)
    state = CampaignState.load(spec, path)
    assert state.torn_tails == 0
    assert set(state.completed) == {chunk.index}
