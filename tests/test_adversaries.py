"""Adversary strategy semantics."""

import pytest

from repro import run_protocol
from repro.errors import AdversaryError
from repro.sim.adversary import (
    Cascade,
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    NoFailures,
    RandomCrashes,
    StaggeredWorkKills,
    compose,
)
from repro.sim.crashes import CrashDirective
from repro.sim.trace import Trace


def test_no_failures_is_a_noop():
    result = run_protocol("A", 20, 4, adversary=NoFailures(), seed=0)
    assert result.metrics.crashes == 0


def test_fixed_schedule_hits_exact_rounds():
    trace = Trace(enabled=True)
    schedule = FixedSchedule([CrashDirective(pid=0, at_round=3)])
    result = run_protocol("A", 20, 4, adversary=schedule, seed=0, trace=trace)
    assert result.metrics.crashes == 1
    crash = trace.first("crash")
    assert crash.pid == 0 and crash.round == 3


def test_random_crashes_respects_budget():
    for seed in range(5):
        result = run_protocol(
            "D", 40, 8, adversary=RandomCrashes(5, max_action_index=10), seed=seed
        )
        assert result.metrics.crashes <= 5
        assert result.survivors >= 3


def test_random_crashes_never_kills_everyone():
    result = run_protocol(
        "replicate", 10, 4, adversary=RandomCrashes(10, max_action_index=3), seed=1
    )
    assert result.survivors >= 1


def test_random_crashes_victim_restriction():
    result = run_protocol(
        "D",
        40,
        8,
        adversary=RandomCrashes(3, max_action_index=5, victims=[1, 2, 3]),
        seed=2,
    )
    # Only the 3 listed victims may crash.
    assert result.survivors >= 5


def test_kill_active_kills_the_active_process():
    trace = Trace(enabled=True)
    result = run_protocol(
        "A", 40, 9, adversary=KillActive(3, actions_before_kill=2), seed=0, trace=trace
    )
    assert result.completed
    crashes = [event.pid for event in trace.of_kind("crash")]
    activations = [pid for _, pid in trace.activations()]
    assert crashes == activations[: len(crashes)]


def test_kill_active_budget_zero_never_crashes():
    result = run_protocol("A", 20, 4, adversary=KillActive(0), seed=0)
    assert result.metrics.crashes == 0


def test_cascade_initial_dead_and_leader():
    trace = Trace(enabled=True)
    adversary = Cascade(lead_units=3, redo_units=1, initial_dead=[5, 6, 7])
    result = run_protocol("C", 16, 8, adversary=adversary, seed=1, trace=trace)
    assert result.completed
    crashed_pids = {event.pid for event in trace.of_kind("crash")}
    assert {5, 6, 7} <= crashed_pids
    assert 0 in crashed_pids  # the leader fell after its lead units


def test_staggered_work_kills_trigger_on_quota():
    adversary = StaggeredWorkKills.plan([(1, 2), (3, 4)])
    trace = Trace(enabled=True)
    result = run_protocol("D", 40, 8, adversary=adversary, seed=0, trace=trace)
    assert result.completed
    # Each victim performed its quota before dying.
    for victim, quota in ((1, 2), (3, 4)):
        performed = [e for e in trace.of_kind("work") if e.pid == victim]
        assert len(performed) == quota


def test_crash_mid_broadcast_delivers_strict_subset_sometimes():
    deliveries = []
    for seed in range(8):
        trace = Trace(enabled=True)
        run_protocol(
            "A", 32, 16, adversary=CrashMidBroadcast([0]), seed=seed, trace=trace
        )
        sent_after_crash = len(
            [e for e in trace.of_kind("send") if e.pid == 0]
        )
        deliveries.append(sent_after_crash)
    assert len(set(deliveries)) > 1  # the kept subset varies with the seed


def test_kill_before_checkpoint_loses_the_interval():
    from repro.sim.adversary import KillBeforeCheckpoint

    n, t = 60, 6
    interval = 20
    result = run_protocol(
        "naive",
        n,
        t,
        interval=interval,
        adversary=KillBeforeCheckpoint(t - 1),
        seed=0,
    )
    assert result.completed
    # Every kill fires at the first broadcast attempt: exactly one full
    # interval of work is lost per crash.
    assert result.metrics.work_total == n + (t - 1) * interval


def test_kill_before_checkpoint_budget_respected():
    from repro.sim.adversary import KillBeforeCheckpoint

    result = run_protocol(
        "naive", 30, 6, interval=10, adversary=KillBeforeCheckpoint(2), seed=0
    )
    assert result.metrics.crashes == 2


def test_compose_runs_both():
    adversary = compose(
        FixedSchedule([CrashDirective(pid=0, at_round=1)]),
        FixedSchedule([CrashDirective(pid=1, at_round=2)]),
    )
    result = run_protocol("A", 20, 8, adversary=adversary, seed=0)
    assert result.metrics.crashes == 2


def test_engine_rejects_total_annihilation():
    schedule = FixedSchedule(
        [CrashDirective(pid=pid, at_round=0) for pid in range(4)]
    )
    with pytest.raises(AdversaryError):
        run_protocol("A", 10, 4, adversary=schedule, seed=0)


def test_total_annihilation_with_opt_in_reports_incomplete():
    schedule = FixedSchedule(
        [CrashDirective(pid=pid, at_round=0) for pid in range(4)]
    )
    result = run_protocol(
        "A", 10, 4, adversary=schedule, seed=0, allow_total_failure=True
    )
    assert not result.completed
    assert result.survivors == 0
