"""Workload scenarios and the WorkSpec abstraction."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.actions import MessageKind, Send
from repro.work.spec import WorkSpec
from repro.work.workloads import scenario, scenario_names


def test_scenarios_exist():
    names = scenario_names()
    assert "valve-shutdown" in names
    assert "idle-workstations" in names
    assert len(names) >= 5


def test_scenario_lookup_and_labels():
    spec = scenario("valve-shutdown", 3)
    assert spec.n == 3
    assert spec.labels() == [
        "verify valve #1 is closed",
        "verify valve #2 is closed",
        "verify valve #3 is closed",
    ]


def test_every_scenario_builds():
    for name in scenario_names():
        spec = scenario(name, 5)
        assert spec.n == 5
        assert len(spec.labels()) == 5
        assert all(isinstance(label, str) for label in spec.labels())


def test_unknown_scenario_raises():
    with pytest.raises(ConfigurationError):
        scenario("nope", 3)


def test_workspec_rejects_negative_n():
    with pytest.raises(ConfigurationError):
        WorkSpec(n=-1)


def test_workspec_unit_effect_hook():
    spec = WorkSpec(
        n=2,
        unit_effect=lambda pid, unit, rnd: [
            Send(unit, ("fx",), MessageKind.VALUE)
        ],
    )
    sends = spec.unit_effect(0, 1, 5)
    assert sends[0].dst == 1 and sends[0].kind is MessageKind.VALUE


def test_workspec_default_description():
    spec = WorkSpec(n=1)
    assert spec.describe_unit(1) == "unit 1"
