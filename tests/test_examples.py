"""Every example script must run end to end (they are part of the API
contract: each exercises the public surface on a realistic scenario)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"
    assert "NO" not in out.split(), f"{path.stem} reported a failure"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the paper repo promises at least three examples"
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
