"""Tests for the metrics tally and the work tracker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.actions import Envelope, MessageKind
from repro.sim.metrics import Metrics
from repro.work.tracker import WorkTracker

# ---- Metrics ---------------------------------------------------------


def _env(src=0, dst=1, kind=MessageKind.CONTROL, rnd=3):
    return Envelope(src=src, dst=dst, payload=(), kind=kind, sent_round=rnd)


def test_effort_is_work_plus_messages():
    metrics = Metrics()
    metrics.record_work(0, 1, 1)
    metrics.record_work(1, 1, 2)
    metrics.record_send(_env())
    assert metrics.work_total == 2
    assert metrics.messages_total == 1
    assert metrics.effort == 3


def test_redundant_work_counts_repeats_only():
    metrics = Metrics()
    for _ in range(3):
        metrics.record_work(0, 7, 1)
    metrics.record_work(0, 8, 2)
    assert metrics.redundant_work() == 2
    assert metrics.distinct_units_done() == 2


def test_messages_by_kind():
    metrics = Metrics()
    metrics.record_send(_env(kind=MessageKind.POLL))
    metrics.record_send(_env(kind=MessageKind.POLL))
    metrics.record_send(_env(kind=MessageKind.ORDINARY))
    assert metrics.messages_of(MessageKind.POLL) == 2
    assert metrics.messages_of(MessageKind.ORDINARY) == 1
    assert metrics.messages_of(MessageKind.GO_AHEAD) == 0


def test_as_dict_round_trips_scalars():
    metrics = Metrics()
    metrics.record_work(0, 1, 5)
    metrics.record_send(_env(rnd=9))
    data = metrics.as_dict()
    assert data["work"] == 1
    assert data["messages"] == 1
    assert data["effort"] == 2


# ---- WorkTracker ---------------------------------------------------------


def test_tracker_completion():
    tracker = WorkTracker(3)
    assert not tracker.all_done()
    tracker.record(0, 1, 1)
    tracker.record(0, 2, 2)
    assert tracker.missing_units() == [3]
    tracker.record(1, 3, 4)
    assert tracker.all_done()
    assert tracker.completion_round() == 4


def test_tracker_multiplicity_and_first():
    tracker = WorkTracker(2)
    tracker.record(0, 1, 3)
    tracker.record(1, 1, 9)
    assert tracker.times_done(1) == 2
    assert tracker.redundant_executions() == 1
    assert tracker.first_execution(1) == (3, 0)
    assert tracker.max_multiplicity() == 2


def test_tracker_rejects_out_of_range_units():
    tracker = WorkTracker(2)
    with pytest.raises(ConfigurationError):
        tracker.record(0, 0, 1)
    with pytest.raises(ConfigurationError):
        tracker.record(0, 3, 1)


def test_tracker_rejects_negative_n():
    with pytest.raises(ConfigurationError):
        WorkTracker(-1)


def test_empty_tracker_is_complete():
    tracker = WorkTracker(0)
    assert tracker.all_done()
    assert tracker.completion_round() is None or tracker.completion_round() == 0


@given(st.lists(st.integers(min_value=1, max_value=20), max_size=200))
def test_tracker_totals_are_consistent(units):
    tracker = WorkTracker(20)
    for index, unit in enumerate(units):
        tracker.record(0, unit, index)
    assert tracker.total_executions() == len(units)
    assert tracker.total_executions() - tracker.redundant_executions() == len(set(units))
    assert tracker.all_done() == (len(set(units)) == 20)
