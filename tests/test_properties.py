"""Property-based tests: protocol guarantees over randomised adversary
schedules.  These are the paper's core theorems quantified over the
crash patterns hypothesis can reach."""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import run_protocol
from repro.analysis import bounds
from repro.sim.adversary import FixedSchedule
from repro.sim.crashes import CrashDirective, CrashPhase

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def crash_schedules(draw, t: int, horizon: int):
    """Up to t-1 distinct victims with arbitrary rounds and phases."""
    count = draw(st.integers(min_value=0, max_value=t - 1))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=t - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    directives = []
    for victim in victims:
        directives.append(
            CrashDirective(
                pid=victim,
                at_round=draw(st.integers(min_value=0, max_value=horizon)),
                phase=draw(st.sampled_from(list(CrashPhase))),
            )
        )
    return FixedSchedule(directives)


# ---- Protocol A -------------------------------------------------------------


@settings(**_SETTINGS)
@given(schedule=crash_schedules(t=9, horizon=1500), seed=st.integers(0, 10))
def test_protocol_a_always_completes_within_bounds(schedule, seed):
    n, t = 54, 9
    result = run_protocol("A", n, t, adversary=schedule, seed=seed)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_a_work(n, t).value
    assert result.metrics.messages_total <= bounds.protocol_a_messages(n, t).value


# ---- Protocol B -------------------------------------------------------------


@settings(**_SETTINGS)
@given(schedule=crash_schedules(t=9, horizon=400), seed=st.integers(0, 10))
def test_protocol_b_always_completes_within_bounds(schedule, seed):
    n, t = 54, 9
    result = run_protocol("B", n, t, adversary=schedule, seed=seed)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_b_work(n, t).value
    assert result.metrics.messages_total <= bounds.protocol_b_messages(n, t).value


# ---- Protocol C -------------------------------------------------------------


@settings(**_SETTINGS)
@given(schedule=crash_schedules(t=8, horizon=600), seed=st.integers(0, 10))
def test_protocol_c_always_completes_within_bounds(schedule, seed):
    n, t = 24, 8
    result = run_protocol("C", n, t, adversary=schedule, seed=seed)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_c_work(n, t).value
    assert result.metrics.messages_total <= bounds.protocol_c_messages(n, t).value


# ---- Protocol D -------------------------------------------------------------


@settings(**_SETTINGS)
@given(schedule=crash_schedules(t=8, horizon=60), seed=st.integers(0, 10))
def test_protocol_d_always_completes(schedule, seed):
    n, t = 40, 8
    result = run_protocol("D", n, t, adversary=schedule, seed=seed)
    assert result.completed
    # Reversion allowed: 4n is the Theorem 4.1(2) work ceiling.
    assert result.metrics.work_total <= 4 * n


# ---- cross-protocol sanity ------------------------------------------------------


@settings(**_SETTINGS)
@given(
    n=st.integers(min_value=1, max_value=120),
    t=st.integers(min_value=1, max_value=20),
    seed=st.integers(0, 5),
)
def test_every_protocol_completes_failure_free(n, t, seed):
    for protocol in ("A", "B", "C", "D", "replicate"):
        result = run_protocol(protocol, n, t, seed=seed)
        assert result.completed, protocol
        assert result.survivors == t


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=60),
    t=st.sampled_from([4, 9, 16]),
)
def test_failure_free_work_is_exactly_n_for_sequential_protocols(n, t):
    for protocol in ("A", "B"):
        result = run_protocol(protocol, n, t, seed=0)
        assert result.metrics.work_total == n
        assert result.metrics.redundant_work() == 0
