"""Fine-grained timing tests for Protocol B's deadline machinery.

These pin down the behaviours the Section 2.4 proof depends on: the gap
between messages an inactive process hears is within PTO/GTO, preactive
go-ahead pacing is PTO rounds, and responses arrive before the next tick.
"""

from repro.core.deadlines import ProtocolBDeadlines
from repro.core.protocol_b import build_protocol_b
from repro.sim.actions import MessageKind
from repro.sim.adversary import FixedSchedule, KillActive
from repro.sim.crashes import CrashDirective
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

N, T = 64, 16


def _run(adversary=None, n=N, t=T, seed=0):
    trace = Trace(enabled=True)
    processes = build_protocol_b(n, t)
    tracker = WorkTracker(n)
    engine = Engine(
        processes,
        tracker=tracker,
        adversary=adversary,
        seed=seed,
        strict_invariants=True,
        trace=trace,
    )
    result = engine.run()
    return result, trace, processes


def test_same_group_gap_within_pto():
    """While the active process works, its group members hear a message
    at least every PTO - 1 stamp rounds (the definition of PTO)."""
    result, trace, processes = _run()
    dl = ProtocolBDeadlines(n=N, t=T)
    # Collect stamps of messages from process 0 to process 1 (same group).
    stamps = [
        event.round
        for event in trace.of_kind("send")
        if event.pid == 0 and event.detail[1] == 1
    ]
    assert stamps, "process 1 heard from the leader"
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    assert all(gap <= dl.PTO - 1 for gap in gaps), (gaps, dl.PTO)


def test_goahead_pacing_is_pto():
    # Crash the whole first group mid-execution; the first preactive
    # process of group 2 polls its group-mates PTO rounds apart.
    group_size = 4
    directives = [
        CrashDirective(pid=pid, at_round=9) for pid in range(group_size)
    ]
    result, trace, _ = _run(adversary=FixedSchedule(directives), seed=1)
    assert result.completed
    dl = ProtocolBDeadlines(n=N, t=T)
    goaheads = [
        event
        for event in trace.of_kind("send")
        if event.detail[0] == MessageKind.GO_AHEAD.value
    ]
    by_sender = {}
    for event in goaheads:
        by_sender.setdefault(event.pid, []).append(event.round)
    for sender, stamps in by_sender.items():
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(gap == dl.PTO for gap in gaps), (sender, stamps)


def test_goahead_targets_ascend_within_group():
    group_size = 4
    directives = [CrashDirective(pid=pid, at_round=9) for pid in range(group_size)]
    result, trace, _ = _run(adversary=FixedSchedule(directives), seed=1)
    goahead_targets = [
        (event.pid, event.detail[1])
        for event in trace.of_kind("send")
        if event.detail[0] == MessageKind.GO_AHEAD.value
    ]
    for sender, target in goahead_targets:
        assert target < sender
        # Same group:
        assert target // group_size == sender // group_size


def test_goahead_response_arrives_within_two_rounds():
    # Crash only process 0; process 1..3 remain; whoever goes preactive
    # first will wake a live lower neighbour, which must respond (its
    # first DoWork action is a broadcast) within 2 stamp rounds.
    result, trace, _ = _run(adversary=FixedSchedule([CrashDirective(0, 9)]), seed=2)
    assert result.completed
    goaheads = [
        event
        for event in trace.of_kind("send")
        if event.detail[0] == MessageKind.GO_AHEAD.value
    ]
    sends = trace.of_kind("send")
    for goahead in goaheads:
        target = goahead.detail[1]
        # The target's first broadcast at or after the go-ahead stamp (a
        # target whose own deadline fires the same round responds with
        # stamp equal to the go-ahead's - even earlier than the paper's
        # "within one round").
        responses = [
            event
            for event in sends
            if event.pid == target and event.round >= goahead.round
        ]
        if responses:
            assert responses[0].round <= goahead.round + 1


def test_activation_within_tt_of_last_message():
    """Takeover latency: a process that becomes active does so within
    TT(j, i) rounds of its last ordinary message (the transition-time
    guarantee the Section 2.4 analysis builds on)."""
    result, trace, processes = _run(
        adversary=KillActive(8, actions_before_kill=2), seed=3
    )
    assert result.completed
    dl = ProtocolBDeadlines(n=N, t=T)
    activations = dict((pid, rnd) for rnd, pid in trace.activations())
    # Reconstruct each activated process's last ordinary receipt.
    ordinary_kinds = (
        MessageKind.PARTIAL_CHECKPOINT.value,
        MessageKind.FULL_CHECKPOINT.value,
    )
    for pid, act_round in activations.items():
        if pid == 0:
            continue
        heard = [
            (event.round, event.pid)
            for event in trace.of_kind("send")
            if event.detail[0] in ordinary_kinds
            and event.detail[1] == pid
            and event.round < act_round
        ]
        if not heard:
            continue
        last_round, last_sender = max(heard)
        assert act_round - last_round <= dl.TT(pid, last_sender) + dl.slack, (
            pid,
            act_round,
            last_round,
            last_sender,
        )


def test_pto_scales_with_subchunk_size():
    small = ProtocolBDeadlines(n=16, t=16, slack=0)
    large = ProtocolBDeadlines(n=1600, t=16, slack=0)
    assert small.PTO == 1 + 2
    assert large.PTO == 100 + 2


def test_process_zero_active_immediately():
    processes = build_protocol_b(8, 4)
    assert processes[0].wake_round() == 0
    assert processes[1].wake_round() > 0
