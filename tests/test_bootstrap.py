"""The Section 1 bootstrap: work not initially common knowledge."""

import pytest

from repro.agreement.bootstrap import run_with_unknown_pool
from repro.errors import ConfigurationError
from repro.sim.adversary import RandomCrashes


def test_pool_agreed_and_performed():
    outcome = run_with_unknown_pool(range(1, 41), 8, protocol="B", seed=1)
    assert outcome.pool_agreement
    assert outcome.agreed_pool == tuple(range(1, 41))
    assert outcome.completed
    assert outcome.stage2_work >= 40


def test_cost_at_most_doubles_for_n_omega_t():
    # Stage 1's cost is itself a work-protocol cost on n units, so the
    # combined message count is at most ~2x a single stage plus O(n).
    n, t = 64, 8
    outcome = run_with_unknown_pool(range(1, n + 1), t, protocol="B", seed=2)
    single = outcome.stage2_messages
    assert outcome.total_messages <= 2 * (single + n + 10 * t * 4)


def test_bootstrap_with_stage1_crashes():
    for seed in range(4):
        outcome = run_with_unknown_pool(
            range(1, 25),
            8,
            protocol="B",
            adversary_stage1=RandomCrashes(4, max_action_index=10, victims=list(range(7))),
            seed=seed,
        )
        assert outcome.pool_agreement
        # The general may have crashed before informing anyone, in which
        # case the agreed pool is the default (empty) one - but agreement
        # itself must always hold and stage 2 must complete.
        assert outcome.completed


def test_bootstrap_with_stage2_crashes():
    outcome = run_with_unknown_pool(
        range(1, 25),
        8,
        protocol="B",
        adversary_stage2=RandomCrashes(6, max_action_index=15),
        seed=3,
    )
    assert outcome.pool_agreement and outcome.completed


@pytest.mark.parametrize("protocol", ["A", "C"])
def test_bootstrap_other_protocols(protocol):
    outcome = run_with_unknown_pool(range(1, 13), 6, protocol=protocol, seed=4)
    assert outcome.pool_agreement
    assert outcome.completed


def test_bootstrap_rejects_tiny_system():
    with pytest.raises(ConfigurationError):
        run_with_unknown_pool([1, 2], 1)
