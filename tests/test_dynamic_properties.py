"""Property-based tests for the dynamic-workload variant: random arrival
schedules and crash patterns, with the deliverability invariant."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.protocol_d_dynamic import (
    ArrivalSchedule,
    build_dynamic_protocol_d,
)
from repro.sim.adversary import FixedSchedule
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.work.tracker import WorkTracker

T = 6

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def arrival_schedules(draw):
    count = draw(st.integers(min_value=0, max_value=24))
    arrivals = []
    for unit in range(1, count + 1):
        arrivals.append(
            (
                draw(st.integers(min_value=0, max_value=120)),
                draw(st.integers(min_value=0, max_value=T - 1)),
                unit,
            )
        )
    return ArrivalSchedule(arrivals)


@st.composite
def crash_plans(draw):
    count = draw(st.integers(min_value=0, max_value=T - 1))
    victims = draw(
        st.lists(
            st.integers(min_value=0, max_value=T - 1),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return FixedSchedule(
        CrashDirective(
            pid=victim,
            at_round=draw(st.integers(min_value=0, max_value=200)),
            phase=draw(st.sampled_from(list(CrashPhase))),
        )
        for victim in victims
    )


@settings(**_SETTINGS)
@given(schedule=arrival_schedules(), crashes=crash_plans(), seed=st.integers(0, 5))
def test_units_at_surviving_sites_always_done(schedule, crashes, seed):
    processes = build_dynamic_protocol_d(T, schedule, cycle_length=10)
    tracker = WorkTracker(schedule.total_units)
    engine = Engine(processes, tracker=tracker, adversary=crashes, seed=seed)
    engine.run()
    crashed = {p.pid for p in processes if p.crashed}
    recoverable = {
        unit for _, site, unit in schedule.arrivals if site not in crashed
    }
    missing = set(tracker.missing_units())
    assert not (recoverable & missing)
    # Every live process halted (no deadlock), even when all work is lost.
    assert all(p.halted for p in processes if not p.crashed)


@settings(**_SETTINGS)
@given(schedule=arrival_schedules(), seed=st.integers(0, 5))
def test_failure_free_every_unit_done_exactly_once(schedule, seed):
    processes = build_dynamic_protocol_d(T, schedule, cycle_length=10)
    tracker = WorkTracker(schedule.total_units)
    result = Engine(processes, tracker=tracker, seed=seed).run()
    assert result.completed
    assert tracker.redundant_executions() == 0


@settings(**_SETTINGS)
@given(schedule=arrival_schedules())
def test_no_unit_done_before_it_arrives(schedule):
    processes = build_dynamic_protocol_d(T, schedule, cycle_length=10)
    tracker = WorkTracker(schedule.total_units)
    Engine(processes, tracker=tracker, seed=0).run()
    arrival_round = {unit: rnd for rnd, _, unit in schedule.arrivals}
    for unit in schedule.units:
        first = tracker.first_execution(unit)
        if first is not None:
            assert first[0] >= arrival_round[unit]
