"""Unit tests for the sqrt(t) group structure."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.groups import SqrtGroups
from repro.errors import ConfigurationError


def test_perfect_square_matches_paper():
    groups = SqrtGroups(16)
    assert groups.group_size == 4
    assert groups.num_groups == 4
    # Paper: g_i = ceil((i+1)/sqrt(t)), 1-indexed.
    for pid in range(16):
        assert groups.group_of(pid) == math.ceil((pid + 1) / 4)


def test_members_partition_processes():
    groups = SqrtGroups(16)
    assert groups.members(1) == [0, 1, 2, 3]
    assert groups.members(4) == [12, 13, 14, 15]


def test_general_t_last_group_may_be_smaller():
    groups = SqrtGroups(10)
    assert groups.group_size == 4
    assert groups.num_groups == 3
    assert groups.members(3) == [8, 9]


def test_higher_members_are_partial_checkpoint_recipients():
    groups = SqrtGroups(16)
    assert groups.higher_members(5) == [6, 7]
    assert groups.higher_members(7) == []
    assert groups.higher_members(12) == [13, 14, 15]


def test_lower_members():
    groups = SqrtGroups(16)
    assert groups.lower_members(5) == [4]
    assert groups.lower_members(4) == []


def test_position_in_group():
    groups = SqrtGroups(16)
    assert groups.position_in_group(0) == 0
    assert groups.position_in_group(5) == 1
    assert groups.position_in_group(15) == 3


def test_groups_after():
    groups = SqrtGroups(16)
    assert groups.groups_after(1) == [2, 3, 4]
    assert groups.groups_after(4) == []


def test_single_process():
    groups = SqrtGroups(1)
    assert groups.num_groups == 1
    assert groups.members(1) == [0]
    assert groups.higher_members(0) == []


def test_invalid_inputs_raise():
    with pytest.raises(ConfigurationError):
        SqrtGroups(0)
    groups = SqrtGroups(9)
    with pytest.raises(ConfigurationError):
        groups.group_of(9)
    with pytest.raises(ConfigurationError):
        groups.members(0)
    with pytest.raises(ConfigurationError):
        groups.members(5)


@given(st.integers(min_value=1, max_value=400))
def test_groups_partition_every_t(t):
    groups = SqrtGroups(t)
    seen = []
    for group in range(1, groups.num_groups + 1):
        members = groups.members(group)
        assert members, "no empty groups"
        assert len(members) <= groups.group_size
        seen.extend(members)
    assert seen == list(range(t))


@given(st.integers(min_value=1, max_value=400))
def test_group_size_is_ceil_sqrt(t):
    groups = SqrtGroups(t)
    assert (groups.group_size - 1) ** 2 < t <= groups.group_size ** 2
    assert groups.group_size * groups.num_groups >= t


@given(st.integers(min_value=2, max_value=300), st.data())
def test_position_consistent_with_membership(t, data):
    groups = SqrtGroups(t)
    pid = data.draw(st.integers(min_value=0, max_value=t - 1))
    group = groups.group_of(pid)
    assert groups.members(group)[groups.position_in_group(pid)] == pid
