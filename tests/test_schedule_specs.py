"""The arrival-schedule spec grammar and the D-dynamic registry entry.

What is pinned here: the grammar canonicalises/validates with named
errors, ``schedule_from_spec`` materialises exactly the schedules the
hand-built constructors produce, and ``D-dynamic`` is reachable through
every declarative surface (registry, Scenario, JSON round-trip, CLI)
with metrics identical to wiring the engine by hand.
"""

import pytest

from repro.api import Scenario
from repro.core.protocol_d_dynamic import (
    build_dynamic_protocol_d,
    uniform_arrivals,
)
from repro.core.registry import available_protocols, get_entry, run_protocol
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.specs import normalize_schedule_spec, schedule_from_spec
from repro.work.tracker import WorkTracker
from repro.__main__ import main as cli_main


# ---------------------------------------------------------------------
# Grammar: normalization
# ---------------------------------------------------------------------


def test_none_means_uniform_default():
    assert normalize_schedule_spec(None) == {"kind": "uniform"}


def test_uniform_string_forms():
    assert normalize_schedule_spec("uniform") == {"kind": "uniform"}
    assert normalize_schedule_spec("uniform:2") == {"kind": "uniform", "every": 2}
    assert normalize_schedule_spec("uniform:every=2,start=5") == {
        "kind": "uniform",
        "every": 2,
        "start": 5,
    }


def test_arrivals_string_form():
    assert normalize_schedule_spec("arrivals:0x8,3x4") == {
        "kind": "arrivals",
        "batches": [[0, 8], [3, 4]],
    }


def test_dict_form_is_idempotent():
    spec = {"kind": "arrivals", "batches": [[0, 8], [3, 4]]}
    assert normalize_schedule_spec(spec) == spec
    assert normalize_schedule_spec(normalize_schedule_spec("arrivals:0x8,3x4")) == spec


@pytest.mark.parametrize(
    "bad, fragment",
    [
        ("rush-hour", "unknown schedule kind"),
        ("explicit", "no string form"),
        ("arrivals", "non-empty list of [round, count] pairs"),
        ("arrivals:8", "expected ROUNDxCOUNT"),
        ("arrivals:0x8,count=3", "positional ROUNDxCOUNT"),
        ("uniform:every=0", "must be >= 1"),
        ("uniform:pace=3", "unknown parameter(s) ['pace']"),
        ({"batches": [[0, 8]]}, "need a 'kind' key"),
        ({"kind": "arrivals", "batches": []}, "non-empty list"),
        ({"kind": "arrivals", "batches": [[0]]}, "[round, count] pair"),
        ({"kind": "arrivals", "batches": [[0, "many"]]}, "must be an integer"),
        ({"kind": "explicit", "arrivals": [[0, 1]]}, "[round, site, unit] triple"),
        (7, "must be None, a string, or a dict"),
    ],
)
def test_bad_specs_raise_named_configuration_errors(bad, fragment):
    with pytest.raises(ConfigurationError) as excinfo:
        normalize_schedule_spec(bad)
    assert fragment in str(excinfo.value)


# ---------------------------------------------------------------------
# Grammar: materialization
# ---------------------------------------------------------------------


def test_uniform_spec_matches_hand_built_schedule():
    from_spec = schedule_from_spec(12, 4, "uniform:every=2,start=1")
    by_hand = uniform_arrivals(12, 4, every=2, start=1)
    assert from_spec.arrivals == by_hand.arrivals


def test_arrival_batches_land_round_robin():
    schedule = schedule_from_spec(12, 4, "arrivals:0x8,3x4")
    assert schedule.total_units == 12
    assert schedule.horizon == 3
    # Units are numbered sequentially across batches; sites round-robin.
    assert [(r, s, u) for r, s, u in schedule.arrivals if r == 3] == [
        (3, 0, 9),
        (3, 1, 10),
        (3, 2, 11),
        (3, 3, 12),
    ]


def test_batch_counts_must_sum_to_n():
    with pytest.raises(ConfigurationError, match="counts must sum to n"):
        schedule_from_spec(10, 4, "arrivals:0x8,3x4")


def test_explicit_schedule_checks_sites_and_units():
    spec = {"kind": "explicit", "arrivals": [[0, 0, 1], [2, 1, 2]]}
    schedule = schedule_from_spec(2, 2, spec)
    assert schedule.arrivals == [(0, 0, 1), (2, 1, 2)]
    with pytest.raises(ConfigurationError, match="out of range"):
        schedule_from_spec(2, 2, {"kind": "explicit", "arrivals": [[0, 5, 1], [0, 0, 2]]})
    with pytest.raises(ConfigurationError, match="exactly units 1..3"):
        schedule_from_spec(3, 2, {"kind": "explicit", "arrivals": [[0, 0, 1], [0, 1, 2]]})


# ---------------------------------------------------------------------
# D-dynamic through the declarative surfaces
# ---------------------------------------------------------------------


def test_d_dynamic_is_registered_as_a_sync_protocol():
    assert "d-dynamic" in available_protocols()
    assert "d-dynamic" in available_protocols("sync")
    entry = get_entry("D-dynamic")
    assert entry.engine == "sync"
    assert not entry.single_active


def test_scenario_run_matches_hand_wired_engine():
    scenario = Scenario(
        protocol="D-dynamic",
        n=24,
        t=4,
        seed=3,
        options={"schedule": "uniform:every=2", "cycle_length": 12},
    )
    via_scenario = scenario.run()

    processes = build_dynamic_protocol_d(
        4, uniform_arrivals(24, 4, every=2), cycle_length=12
    )
    by_hand = Engine(processes, tracker=WorkTracker(24), seed=3).run()

    assert via_scenario.completed and by_hand.completed
    assert via_scenario.metrics.as_dict() == by_hand.metrics.as_dict()


def test_scenario_json_round_trip_reproduces_metrics():
    scenario = Scenario(
        protocol="D-dynamic",
        n=12,
        t=4,
        seed=1,
        options={"schedule": "arrivals:0x8,3x4", "cycle_length": 8},
    )
    first = scenario.run()
    again = Scenario.from_json(scenario.to_json()).run()
    assert first.completed
    assert first.metrics.as_dict() == again.metrics.as_dict()


def test_run_protocol_shorthand_accepts_schedule_spec():
    result = run_protocol("D-dynamic", 12, 4, schedule="arrivals:0x12", cycle_length=8)
    assert result.completed


def test_schedule_option_is_canonicalised_at_construction():
    # Spelling variants compare equal, like adversary/delay specs ...
    by_string = Scenario(
        protocol="D-dynamic", n=12, t=4, options={"schedule": "arrivals:0x8,3x4"}
    )
    by_dict = Scenario(
        protocol="D-dynamic",
        n=12,
        t=4,
        options={"schedule": {"kind": "arrivals", "batches": [[0, 8], [3, 4]]}},
    )
    assert by_string == by_dict
    # ... and a bogus spec fails at construction (i.e. at suite load),
    # not halfway through a run.
    with pytest.raises(ConfigurationError, match="unknown schedule kind"):
        Scenario(protocol="D-dynamic", n=12, t=4, options={"schedule": "rush-hour"})


def test_bad_schedule_spec_fails_with_named_error_at_build_time():
    # The batch-count/n cross-check needs (n, t), so it fires at build.
    scenario = Scenario(
        protocol="D-dynamic", n=12, t=4, options={"schedule": "arrivals:0x5"}
    )
    with pytest.raises(ConfigurationError, match="counts must sum to n"):
        scenario.run()


def test_schedule_option_on_static_protocol_is_a_named_error():
    with pytest.raises(ConfigurationError, match="rejected builder option"):
        Scenario(protocol="A", n=12, t=4, options={"schedule": "uniform"}).run()


def test_cli_runs_d_dynamic_with_schedule_flag(capsys):
    rc = cli_main(
        [
            "run",
            "d-dynamic",
            "--n",
            "12",
            "--t",
            "4",
            "--schedule",
            "arrivals:0x8,3x4",
            "--json",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert '"completed": true' in out
    assert '"kind": "arrivals"' in out  # canonical dict form in the echo


def test_cli_schedule_misuse_is_a_clean_error(capsys):
    rc = cli_main(["run", "a", "--n", "12", "--t", "4", "--schedule", "uniform"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "rejected builder option" in err
