"""Protocol C: knowledge spreading, fault detection, Theorem 3.8 bounds."""

import math


from repro import run_protocol
from repro.analysis import bounds
from repro.core.protocol_c import ProtocolCProcess
from repro.sim.actions import MessageKind
from repro.sim.adversary import Cascade, FixedSchedule, KillActive, RandomCrashes
from repro.sim.crashes import CrashDirective
from repro.sim.trace import Trace
from tests.conftest import all_but_one_dead

N, T = 32, 8
LOG_T = math.ceil(math.log2(T))


def test_failure_free_leader_does_all_real_work():
    trace = Trace(enabled=True)
    result = run_protocol("C", N, T, seed=1, trace=trace)
    assert result.completed
    workers = {event.pid for event in trace.of_kind("work")}
    # Process 0 performs all n units; stragglers may redo a small tail.
    assert 0 in workers
    assert result.metrics.work_by_process[0] == N


def test_every_process_eventually_activates_and_halts():
    trace = Trace(enabled=True)
    result = run_protocol("C", N, T, seed=1, trace=trace)
    pids = sorted(pid for _, pid in trace.activations())
    assert pids == list(range(T))  # in C everyone retires via activation
    assert result.halted == T


def test_knowledge_spreads_to_least_knowledgeable():
    # Failure-free: process 0's reports cycle through 1, 2, ..., t-1.
    trace = Trace(enabled=True)
    run_protocol("C", N, T, seed=1, trace=trace)
    ordinary = [
        event
        for event in trace.of_kind("send")
        if event.pid == 0 and event.detail[0] == MessageKind.ORDINARY.value
    ]
    first_targets = [event.detail[1] for event in ordinary[: T - 1]]
    assert first_targets == list(range(1, T))


def test_polls_get_replies_from_live_processes():
    result = run_protocol("C", N, T, seed=1)
    metrics = result.metrics
    assert metrics.messages_of(MessageKind.POLL) > 0
    assert metrics.messages_of(MessageKind.POLL_REPLY) > 0


def test_theorem_3_8_work_bound():
    for seed in range(6):
        result = run_protocol(
            "C", N, T, adversary=RandomCrashes(T - 1, max_action_index=20), seed=seed
        )
        assert result.completed
        assert result.metrics.work_total <= bounds.protocol_c_work(N, T).value


def test_theorem_3_8_message_bound():
    worst = 0
    adversaries = [
        lambda: None,
        lambda: RandomCrashes(T - 1, max_action_index=20),
        lambda: KillActive(T - 1, actions_before_kill=3),
    ]
    for factory in adversaries:
        for seed in range(4):
            result = run_protocol("C", N, T, adversary=factory(), seed=seed)
            assert result.completed
            worst = max(worst, result.metrics.messages_total)
    assert worst <= bounds.protocol_c_messages(N, T).value


def test_round_complexity_is_exponential_but_bounded():
    result = run_protocol(
        "C", N, T, adversary=KillActive(T - 1, actions_before_kill=2), seed=3
    )
    assert result.completed
    assert result.metrics.retire_round <= bounds.protocol_c_rounds(N, T).value


def test_cascade_adversary_defeated():
    """The Section 3 scenario that costs the naive algorithm Theta(t^2):
    fault detection lets C hold the n + 2t work bound through it."""
    adversary = Cascade(
        lead_units=T - 1, redo_units=1, initial_dead=list(range(T // 2 + 1, T))
    )
    result = run_protocol("C", N, T, adversary=adversary, seed=4)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_c_work(N, T).value


def test_most_knowledgeable_takes_over():
    # Kill process 0 after a few units; the process that received the
    # last report (not necessarily pid 1) must become active next.
    trace = Trace(enabled=True)
    adversary = KillActive(1, actions_before_kill=9)
    result = run_protocol("C", N, T, adversary=adversary, seed=5, trace=trace)
    assert result.completed
    activations = trace.activations()
    second = activations[1][1]
    ordinary_targets = [
        event.detail[1]
        for event in trace.of_kind("send")
        if event.pid == 0 and event.detail[0] == MessageKind.ORDINARY.value
    ]
    assert ordinary_targets, "leader reported at least once before dying"
    assert second == ordinary_targets[-1]


def test_lone_survivor():
    result = run_protocol("C", N, T, adversary=all_but_one_dead(T), seed=6)
    assert result.completed
    assert result.survivors == 1


def test_non_power_of_two_t_padded():
    for t in (3, 5, 6, 12):
        result = run_protocol(
            "C", 24, t, adversary=RandomCrashes(t - 1, max_action_index=12), seed=2
        )
        assert result.completed


def test_t_one_runs_silent():
    result = run_protocol("C", 10, 1, seed=1)
    assert result.completed
    assert result.metrics.messages_total == 0


def test_n_zero():
    result = run_protocol("C", 0, 8, seed=1)
    assert result.completed


def test_reduced_view_never_exceeds_maximum():
    processes = [ProtocolCProcess(pid, T, N) for pid in range(T)]
    for process in processes:
        assert process.reduced_view() == 0
        assert process.deadlines.max_reduced_view == N + T - 1


def test_batched_variant_cuts_messages():
    n_big = 128
    plain = run_protocol("C", n_big, T, seed=1)
    batched = run_protocol("C-batched", n_big, T, seed=1)
    assert plain.completed and batched.completed
    assert batched.metrics.messages_total < plain.metrics.messages_total
    assert (
        batched.metrics.messages_total
        <= bounds.protocol_c_batched_messages(n_big, T).value
    )


def test_batched_variant_work_stays_linear():
    for seed in range(4):
        result = run_protocol(
            "C-batched",
            128,
            T,
            adversary=RandomCrashes(T - 1, max_action_index=15),
            seed=seed,
        )
        assert result.completed
        assert (
            result.metrics.work_total
            <= bounds.protocol_c_batched_work(128, T).value
        )


def test_failure_reports_lower_level_to_inner_group():
    # Kill half the processes before anything happens; the first active
    # process's fault detection must report failures via ordinary messages.
    dead = list(range(1, T // 2))
    adversary = FixedSchedule([CrashDirective(pid=pid, at_round=0) for pid in dead])
    result = run_protocol("C", N, T, adversary=adversary, seed=7)
    assert result.completed
    assert result.metrics.messages_of(MessageKind.ORDINARY) > 0
