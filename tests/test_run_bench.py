"""Smoke test for the standalone benchmark runner.

``benchmarks/run_bench.py`` is deliberately pytest-free so it can run in
bare CI jobs; this test invokes it as a subprocess in ``--smoke`` mode to
make sure the runner itself cannot rot.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_run_bench_smoke(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "run_bench.py"),
            "--smoke",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text())
    assert payload["suite"] == "engine"
    assert payload["smoke"] is True
    names = {row["name"] for row in payload["scenarios"]}
    assert {"A_small", "C_exponential_rounds_small", "D_small"} <= names
    for row in payload["scenarios"]:
        assert "error" not in row
        if "skipped" in row:
            # Pinned-columnar rows legitimately skip when the optional
            # numpy extra is absent; anything else must have run.
            assert row["name"] == "D_columnar_smoke"
            continue
        assert row["completed"]
        assert row["seconds_best"] >= 0
