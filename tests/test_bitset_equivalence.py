"""Bitset-backed Protocol D must be observationally identical to sets.

``_ReferenceProtocolD`` / ``_ReferenceDynamicD`` below are verbatim
copies of the pre-bitset implementations (Python ``set`` state,
``frozenset`` payloads).  Running both implementations over randomized
seeds x adversaries under the same engine and diffing every observable
output - metrics, full trace (including wire payloads: a frozen bitset
compares equal to the frozenset with the same members), run outcome -
pins the bitset refactor down exactly the way
``tests/test_scheduler_equivalence.py`` pinned the scheduler rewrite.
"""

import math
from typing import Dict, List, Optional

import pytest

from repro.core.protocol_a import ProtocolAProcess
from repro.core.protocol_d import build_protocol_d
from repro.core.protocol_d_dynamic import build_dynamic_protocol_d, uniform_arrivals
from repro.sim.actions import Action, Envelope, MessageKind, Send, broadcast
from repro.sim.adversary import (
    CrashMidBroadcast,
    FixedSchedule,
    RandomCrashes,
    StaggeredWorkKills,
)
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

_WORK = "work"
_AGREE = "agree"
_REVERT = "revert"
_INNER_KINDS = (MessageKind.PARTIAL_CHECKPOINT, MessageKind.FULL_CHECKPOINT)


class _ReferenceProtocolD(Process):
    """The pre-bitset Protocol D process: ``set`` state, ``frozenset``
    payloads, kept as an oracle."""

    def __init__(self, pid, t, n, *, revert_threshold=0.5, slack=2):
        super().__init__(pid, t)
        self.n = n
        self.revert_threshold = revert_threshold
        self.slack = slack
        self.S = set(range(1, n + 1))
        self.T = set(range(t))
        self.phase_index = 0
        self.reverted = False
        self._share: List[int] = []
        self._work_start = 0
        self._work_done_count = 0
        self._agree_entry = 0
        self._U = set()
        self._u_snapshot = set()
        self._round_var = 0
        self._agree_done = False
        self._T_prev = set(self.T)
        self._buffer: List[Envelope] = []
        self._inner: Optional[ProtocolAProcess] = None
        self._revert_members: List[int] = []
        self._revert_units: List[int] = []
        self.state = _WORK
        self._setup_work_phase(start_round=0)

    def _setup_work_phase(self, start_round):
        self.state = _WORK
        self.phase_index += 1
        self._T_prev = set(self.T)
        members = sorted(self.T)
        units = sorted(self.S)
        per_process = math.ceil(len(units) / len(members)) if members else 0
        try:
            rank = members.index(self.pid)
        except ValueError:
            rank = None
        if rank is None or per_process == 0:
            self._share = []
        else:
            self._share = units[rank * per_process : (rank + 1) * per_process]
        self._work_start = start_round
        self._work_done_count = 0
        self._agree_entry = start_round + per_process
        self.S -= set(self._share)

    def wake_round(self):
        if self.retired:
            return None
        if self.state == _REVERT:
            assert self._inner is not None
            return self._inner.wake_round()
        if self.state == _WORK:
            if self._work_done_count < len(self._share):
                return self._work_start + self._work_done_count
            return self._agree_entry
        return 0

    def on_round(self, round_number, inbox):
        if self.state == _REVERT:
            return self._revert_round(round_number, inbox)
        self._buffer.extend(
            env
            for env in inbox
            if env.kind is MessageKind.AGREEMENT
            and env.payload[0] >= self.phase_index
        )
        if self.state == _WORK:
            if round_number < self._agree_entry:
                return self._work_round(round_number)
            return self._enter_agree(round_number)
        return self._agree_round(round_number)

    def _work_round(self, round_number):
        index = round_number - self._work_start
        if index < len(self._share) and index == self._work_done_count:
            self._work_done_count += 1
            return Action(work=self._share[index])
        return Action.idle()

    def _enter_agree(self, round_number):
        self.state = _AGREE
        self._U = set(self.T)
        self.T = {self.pid}
        self._agree_done = False
        self._round_var = 1 if self.phase_index == 1 else 0
        self._u_snapshot = set(self._U)
        return Action(sends=self._agree_broadcast(done=False))

    def _agree_broadcast(self, done):
        payload = (self.phase_index, frozenset(self.S), frozenset(self.T), done)
        recipients = [pid for pid in sorted(self._U) if pid != self.pid]
        return broadcast(recipients, payload, MessageKind.AGREEMENT)

    def _agree_round(self, round_number):
        received: Dict[int, tuple] = {}
        for envelope in sorted(self._buffer, key=lambda env: env.sent_round):
            payload = envelope.payload
            if payload[0] != self.phase_index:
                continue
            previous = received.get(envelope.src)
            if previous is None or payload[3] or not previous[3]:
                received[envelope.src] = payload
        self._buffer.clear()
        for pid in sorted(self._u_snapshot - {self.pid}):
            payload = received.get(pid)
            if payload is not None and not payload[3]:
                self.S &= payload[1]
                self.T |= payload[2]
        for pid in sorted(received):
            payload = received[pid]
            if payload[3]:
                self.S = set(payload[1])
                self.T = set(payload[2])
                self._agree_done = True
        if self._round_var >= 1:
            for pid in self._u_snapshot - {self.pid}:
                if pid not in received:
                    self._U.discard(pid)
        if (
            not self._agree_done
            and self._round_var >= 1
            and self._U == self._u_snapshot
        ):
            self._agree_done = True
        self._round_var += 1
        if self._agree_done:
            sends = self._agree_broadcast(done=True)
            return self._finish_phase(round_number, sends)
        self._u_snapshot = set(self._U)
        return Action(sends=self._agree_broadcast(done=False))

    def _finish_phase(self, round_number, sends):
        threshold = self.revert_threshold * len(self._T_prev)
        if self.S and len(self.T) < threshold:
            self._enter_revert(round_number + 1)
            return Action(sends=sends)
        if not self.S:
            return Action(sends=sends, halt=True)
        self._setup_work_phase(start_round=round_number + 1)
        return Action(sends=sends)

    def _enter_revert(self, start_round):
        self.state = _REVERT
        self.reverted = True
        self._revert_members = sorted(self.T)
        self._revert_units = sorted(self.S)
        rank = self._revert_members.index(self.pid)
        self._inner = ProtocolAProcess(
            rank,
            len(self._revert_members),
            len(self._revert_units),
            epoch=start_round,
            slack=self.slack + 4,
        )

    def _revert_round(self, round_number, inbox):
        assert self._inner is not None
        rank_of = {pid: rank for rank, pid in enumerate(self._revert_members)}
        translated = [
            Envelope(
                src=rank_of[env.src],
                dst=rank_of[self.pid],
                payload=env.payload,
                kind=env.kind,
                sent_round=env.sent_round,
            )
            for env in inbox
            if env.kind in _INNER_KINDS and env.src in rank_of
        ]
        action = self._inner.on_round(round_number, translated)
        work = (
            self._revert_units[action.work - 1] if action.work is not None else None
        )
        sends = [
            Send(self._revert_members[send.dst], send.payload, send.kind)
            for send in action.sends
        ]
        return Action(work=work, sends=sends, halt=action.halt)


class _ReferenceDynamicD(Process):
    """The pre-bitset dynamic-workload Protocol D process."""

    def __init__(self, pid, t, schedule, *, cycle_length=16):
        super().__init__(pid, t)
        self.schedule = schedule
        self.cycle_length = cycle_length
        self._pending_arrivals = sorted(schedule.at_site(pid))
        self.known = set()
        self._arrived_buffer = set()
        self.done = set()
        self.live = set(range(t))
        self.state = _AGREE
        self._cycle_start = 0
        self._first_cycle = True
        self._U = set(self.live)
        self._u_snapshot = set()
        self._round_var = 0
        self._agree_done = False
        self._broadcast_pending = True
        self._share: List[int] = []
        self._share_index = 0

    def _absorb_arrivals(self, round_number):
        while self._pending_arrivals and self._pending_arrivals[0][0] <= round_number:
            _, unit = self._pending_arrivals.pop(0)
            self._arrived_buffer.add(unit)

    def wake_round(self):
        if self.retired:
            return None
        if self.state == _AGREE:
            return 0
        if self._share_index < len(self._share):
            return 0
        next_points = [self._cycle_start + self.cycle_length]
        if self._pending_arrivals:
            next_points.append(self._pending_arrivals[0][0])
        return min(next_points)

    def on_round(self, round_number, inbox):
        self._absorb_arrivals(round_number)
        if self.state == _WORK and round_number >= self._cycle_start + self.cycle_length:
            self._enter_agree(round_number)
        if self.state == _AGREE:
            return self._agree_round(round_number, inbox)
        return self._work_round()

    def _enter_agree(self, round_number):
        self.state = _AGREE
        self._cycle_start = round_number
        self._U = set(self.live)
        self.live = {self.pid}
        self._agree_done = False
        self._round_var = 1 if self._first_cycle else 0
        self._first_cycle = False
        self._broadcast_pending = True

    def _payload(self, done_flag):
        return (
            self._cycle_start,
            frozenset(self.known),
            frozenset(self.done),
            frozenset(self.live),
            done_flag,
        )

    def _agree_broadcast(self, done_flag):
        recipients = [pid for pid in sorted(self._U) if pid != self.pid]
        return broadcast(recipients, self._payload(done_flag), MessageKind.AGREEMENT)

    def _agree_round(self, round_number, inbox):
        if self._broadcast_pending:
            self.known |= self._arrived_buffer
            self._arrived_buffer.clear()
            self._broadcast_pending = False
            self._u_snapshot = set(self._U)
            return Action(sends=self._agree_broadcast(False))
        received: Dict[int, tuple] = {}
        for envelope in sorted(inbox, key=lambda env: env.sent_round):
            if envelope.kind is not MessageKind.AGREEMENT:
                continue
            payload = envelope.payload
            if payload[0] != self._cycle_start:
                continue
            previous = received.get(envelope.src)
            if previous is None or payload[4] or not previous[4]:
                received[envelope.src] = payload
        for pid in sorted(self._u_snapshot - {self.pid}):
            payload = received.get(pid)
            if payload is not None and not payload[4]:
                self.known |= payload[1]
                self.done |= payload[2]
                self.live |= payload[3]
        adopted = None
        for pid in sorted(received):
            payload = received[pid]
            if payload[4]:
                adopted = payload
        if adopted is not None:
            self.known = set(adopted[1])
            self.done = set(adopted[2])
            self.live = set(adopted[3])
            self._agree_done = True
        if self._round_var >= 1:
            for pid in self._u_snapshot - {self.pid}:
                if pid not in received:
                    self._U.discard(pid)
        if (
            not self._agree_done
            and self._round_var >= 1
            and self._U == self._u_snapshot
        ):
            self._agree_done = True
        self._round_var += 1
        if self._agree_done:
            sends = self._agree_broadcast(True)
            return self._finish_agreement(round_number, sends)
        self._u_snapshot = set(self._U)
        return Action(sends=self._agree_broadcast(False))

    def _finish_agreement(self, round_number, sends):
        outstanding = sorted(self.known - self.done)
        no_more_arrivals = round_number >= self.schedule.horizon
        if (
            not outstanding
            and no_more_arrivals
            and not self._pending_arrivals
            and not self._arrived_buffer
        ):
            return Action(sends=sends, halt=True)
        members = sorted(self.live)
        per_process = math.ceil(len(outstanding) / len(members)) if members else 0
        try:
            rank = members.index(self.pid)
        except ValueError:
            rank = None
        if rank is None or per_process == 0:
            self._share = []
        else:
            self._share = outstanding[rank * per_process : (rank + 1) * per_process]
        self._share_index = 0
        self.state = _WORK
        return Action(sends=sends)

    def _work_round(self):
        if self._share_index < len(self._share):
            unit = self._share[self._share_index]
            self._share_index += 1
            self.done.add(unit)
            return Action(work=unit)
        return Action.idle()


# ---- the diff harness ------------------------------------------------------


def _run(processes, n, adversary_factory, seed):
    trace = Trace(enabled=True)
    engine = Engine(
        processes,
        tracker=WorkTracker(n),
        adversary=adversary_factory() if adversary_factory else None,
        seed=seed,
        trace=trace,
    )
    result = engine.run()
    events = [(e.round, e.kind, e.pid, e.detail) for e in trace]
    return result, events


def _assert_equivalent(fast, fast_events, ref, ref_events):
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert len(fast_events) == len(ref_events)
    # Payload-level diff: FrozenIntBitset == frozenset holds memberwise.
    for fast_event, ref_event in zip(fast_events, ref_events):
        assert fast_event == ref_event, (fast_event, ref_event)
    assert (fast.completed, fast.survivors, fast.halted) == (
        ref.completed,
        ref.survivors,
        ref.halted,
    )


# 4 adversary shapes x 3 seeds = 12 static-D combinations.
STATIC_COMBOS = [
    ("none", None),
    ("random", lambda: RandomCrashes(5, max_action_index=10)),
    ("staggered", lambda: StaggeredWorkKills.plan([(1, 1), (3, 2), (5, 1)])),
    ("midcast", lambda: CrashMidBroadcast(victims=(0, 2), min_batch=2)),
]
SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,adversary_factory", STATIC_COMBOS, ids=[c[0] for c in STATIC_COMBOS]
)
def test_protocol_d_bitset_matches_set_reference(name, adversary_factory, seed):
    n, t = 96, 8
    fast, fast_events = _run(build_protocol_d(n, t), n, adversary_factory, seed)
    ref, ref_events = _run(
        [_ReferenceProtocolD(pid, t, n) for pid in range(t)],
        n,
        adversary_factory,
        seed,
    )
    _assert_equivalent(fast, fast_events, ref, ref_events)


def test_protocol_d_reversion_path_matches_reference():
    """Heavy kills force the Protocol A reversion in both implementations."""
    n, t = 64, 8

    def factory():
        return StaggeredWorkKills.plan([(pid, 1) for pid in range(6)])

    for seed in range(3):
        fast_procs = build_protocol_d(n, t)
        fast, fast_events = _run(fast_procs, n, factory, seed)
        ref, ref_events = _run(
            [_ReferenceProtocolD(pid, t, n) for pid in range(t)], n, factory, seed
        )
        assert any(p.reverted for p in fast_procs)
        _assert_equivalent(fast, fast_events, ref, ref_events)


def test_protocol_d_scripted_mid_broadcast_matches_reference():
    directives = [
        CrashDirective(pid=1, at_round=5, phase=CrashPhase.DURING_SEND),
        CrashDirective(pid=4, at_round=13, phase=CrashPhase.AFTER_WORK),
    ]
    n, t = 96, 8

    def factory():
        return FixedSchedule(directives)

    for seed in range(3):
        fast, fast_events = _run(build_protocol_d(n, t), n, factory, seed)
        ref, ref_events = _run(
            [_ReferenceProtocolD(pid, t, n) for pid in range(t)], n, factory, seed
        )
        _assert_equivalent(fast, fast_events, ref, ref_events)


# 2 adversary shapes x 3 seeds = 6 dynamic-D combinations.
DYNAMIC_COMBOS = [
    ("random", lambda: RandomCrashes(3, max_action_index=15)),
    ("staggered", lambda: StaggeredWorkKills.plan([(2, 1)])),
]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,adversary_factory", DYNAMIC_COMBOS, ids=[c[0] for c in DYNAMIC_COMBOS]
)
def test_dynamic_d_bitset_matches_set_reference(name, adversary_factory, seed):
    n, t, cycle = 48, 8, 12
    schedule = uniform_arrivals(n, t, every=2)
    fast, fast_events = _run(
        build_dynamic_protocol_d(t, schedule, cycle_length=cycle),
        n,
        adversary_factory,
        seed,
    )
    ref, ref_events = _run(
        [_ReferenceDynamicD(pid, t, schedule, cycle_length=cycle) for pid in range(t)],
        n,
        adversary_factory,
        seed,
    )
    _assert_equivalent(fast, fast_events, ref, ref_events)


def test_final_state_matches_reference_memberwise():
    """Terminal protocol state agrees memberwise, not just observably."""
    n, t = 96, 8

    def factory():
        return RandomCrashes(4, max_action_index=12)

    fast_procs = build_protocol_d(n, t)
    ref_procs = [_ReferenceProtocolD(pid, t, n) for pid in range(t)]
    _run(fast_procs, n, factory, seed=7)
    _run(ref_procs, n, factory, seed=7)
    for fast_proc, ref_proc in zip(fast_procs, ref_procs):
        assert fast_proc.S == ref_proc.S
        assert fast_proc.T == ref_proc.T
        assert fast_proc.crashed == ref_proc.crashed
        assert fast_proc.halted == ref_proc.halted
