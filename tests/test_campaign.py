"""The campaign runner: grid planning, chunk ledgers, interruption and
resume, sharding, remote execution, and the headline bit-identical
determinism contract (``docs/campaigns.md``)."""

import json

import pytest

from repro.api import ResultSet, Scenario, run_scenarios
from repro.campaign import (
    CampaignLedger,
    CampaignSpec,
    CampaignState,
    build_report,
    campaign_status,
    load_campaign,
    parse_shard,
    run_campaign,
)
from repro.cache import ResultCache
from repro.errors import ConfigurationError


def _spec(tmp_path=None, **overrides) -> CampaignSpec:
    """A small, fast grid: 2 protocols x 2 adversaries x 2 n x 5 seeds
    = 40 runs in 5 chunks of 8."""
    fields = dict(
        name="unit-grid",
        base=Scenario(protocol="A", n=8, t=2, seed=0),
        seeds=list(range(5)),
        protocols=["A", "D"],
        adversaries=[None, "random:1,max_action_index=5"],
        n_values=[6, 8],
        chunk_size=8,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def _results_section(report):
    """Everything bit-equality compares: the report minus per-session
    execution provenance."""
    data = report.as_dict()
    data.pop("execution")
    return data


# ---- spec grammar and validation --------------------------------------------


def test_grid_arithmetic():
    spec = _spec()
    assert spec.total_runs == 2 * 2 * 2 * 5
    assert spec.total_chunks == 5
    assert spec.total_cells == 8
    assert [len(spec.chunk(i)) for i in range(5)] == [8, 8, 8, 8, 8]


def test_grid_order_contract_seeds_fastest():
    spec = _spec()
    rows = list(spec.scenarios())
    # seeds vary fastest, then t (single), n, adversaries, protocols.
    assert [s.seed for s in rows[:6]] == [0, 1, 2, 3, 4, 0]
    assert [s.n for s in rows[:10]] == [6] * 5 + [8] * 5
    assert rows[0].protocol == "A" and rows[-1].protocol == "D"
    # Mixed-radix decoding addresses any row without enumerating.
    assert spec.scenario_at(23).cache_key() == rows[23].cache_key()


def test_uneven_final_chunk():
    spec = _spec(chunk_size=9)
    assert spec.total_chunks == 5
    assert spec.chunk_length(4) == 40 - 4 * 9
    assert len(spec.chunk(4)) == 4


def test_missing_axes_fall_back_to_base():
    spec = CampaignSpec(
        name="tiny",
        base=Scenario(protocol="B", n=12, t=3, seed=0),
        seeds=[0, 1],
    )
    assert spec.protocol_axis == ["B"]
    assert spec.n_axis == [12]
    assert spec.t_axis == [3]
    assert spec.total_runs == 2


def test_seed_range_form_matches_explicit_list(tmp_path):
    explicit = {
        "campaign": "g",
        "version": 1,
        "base": {"protocol": "A", "n": 8, "t": 2, "seed": 0},
        "axes": {"seeds": [3, 4, 5, 6]},
    }
    ranged = dict(explicit, axes={"seeds": {"start": 3, "count": 4}})
    assert (
        CampaignSpec.from_dict(explicit).digest()
        == CampaignSpec.from_dict(ranged).digest()
    )


@pytest.mark.parametrize(
    "mutation, message",
    [
        ({"version": 2}, "format version"),
        ({"axes": {"seeds": [0], "bogus": [1]}}, "unknown axis"),
        ({"axes": {}}, "'seeds' axis"),
        ({"chunk_size": 0}, "chunk_size"),
        ({"pins": {"seconds": 1}}, "unknown pin"),
        ({"extra": 1}, "unknown field"),
        ({"axes": {"seeds": {"start": 0, "count": 0}}}, "count"),
        ({"axes": {"seeds": [0], "n": [0]}}, "positive integers"),
    ],
)
def test_spec_grammar_errors_name_the_field(mutation, message):
    data = {
        "campaign": "g",
        "version": 1,
        "base": {"protocol": "A", "n": 8, "t": 2, "seed": 0},
        "axes": {"seeds": [0]},
    }
    data.update(mutation)
    with pytest.raises(ConfigurationError, match=message):
        CampaignSpec.from_dict(data)


def test_load_campaign_roundtrip(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(_spec().to_json())
    loaded = load_campaign(path)
    assert loaded.digest() == _spec().digest()
    assert loaded.total_runs == 40


# ---- digests ----------------------------------------------------------------


def test_digest_ignores_labels_and_pins():
    a = _spec()
    b = _spec(name="renamed", description="different", pins={"work": 9})
    assert a.digest() == b.digest()


def test_digest_ignores_adversary_spelling_variants():
    a = _spec(adversaries=[None, "random:1,max_action_index=5"])
    b = _spec(
        adversaries=[None, {"kind": "random", "count": 1, "max_action_index": 5}]
    )
    assert a.digest() == b.digest()


@pytest.mark.parametrize(
    "changes",
    [
        {"seeds": [0, 1, 2, 3, 4, 5]},
        {"protocols": ["A"]},
        {"n_values": [6, 10]},
        {"chunk_size": 10},
        {"base": Scenario(protocol="A", n=8, t=3, seed=0)},
    ],
)
def test_digest_tracks_grid_changes(changes):
    assert _spec().digest() != _spec(**changes).digest()


# ---- the ledger -------------------------------------------------------------


def test_ledger_rejects_foreign_digest(tmp_path):
    path = tmp_path / "grid.ledger"
    CampaignLedger(path, _spec())
    with pytest.raises(ConfigurationError, match="digest"):
        CampaignLedger(path, _spec(seeds=[0, 1]))
    with pytest.raises(ConfigurationError, match="digest"):
        CampaignState.load(_spec(seeds=[0, 1]), path)


def test_ledger_mid_file_corruption_is_an_error(tmp_path):
    spec = _spec()
    path = tmp_path / "grid.ledger"
    run_campaign(spec, path)
    lines = path.read_text().splitlines()
    lines[2] = lines[2][:40]  # tear a NON-final line
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ConfigurationError, match="corruption"):
        CampaignState.load(spec, path)


def test_ledger_header_line_tear_is_named_corruption(tmp_path):
    # A torn line is only forgivable when it is the FINAL line (an
    # interrupted append).  A torn header with intact chunk records
    # after it can't be an interrupted append - the error must say so
    # and name the line.
    spec = _spec()
    path = tmp_path / "grid.ledger"
    run_campaign(spec, path)
    lines = path.read_text().splitlines()
    lines[0] = lines[0][:25]  # tear the header; chunk lines stay intact
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ConfigurationError) as excinfo:
        CampaignState.load(spec, path)
    message = str(excinfo.value)
    assert "line 1" in message
    assert "corruption" in message


def test_ledger_lone_torn_header_is_unusable(tmp_path):
    # A file holding only a torn header is indistinguishable from an
    # interrupted header write: no digest to validate against, nothing
    # to resume - the error tells the operator to start over.
    path = tmp_path / "grid.ledger"
    path.write_text('{"format": 1, "digest": "ab')
    with pytest.raises(ConfigurationError, match="no complete header line"):
        CampaignState.load(_spec(), path)


def test_missing_ledger_is_an_empty_state(tmp_path):
    state = CampaignState.load(_spec(), tmp_path / "never-written.ledger")
    assert state.chunks_done == 0
    assert state.remaining() == list(range(5))
    assert not state.complete


# ---- execution: merged report == direct run --------------------------------


def test_campaign_matches_direct_run_scenarios(tmp_path):
    spec = _spec()
    outcome = run_campaign(spec, tmp_path / "grid.ledger")
    assert outcome.complete
    assert outcome.chunks_executed == 5
    assert outcome.executed_runs == 40
    report = outcome.report()
    rows = list(spec.scenarios())
    direct = ResultSet(list(zip(rows, run_scenarios(rows))))
    assert len(report.result_set) == 40
    assert report.result_set.worst() == direct.worst()
    assert report.result_set.mean() == direct.mean()
    for (_, merged), (_, straight) in zip(
        report.result_set.entries, direct.entries
    ):
        assert merged == straight  # full dataclass equality, config echo too


def test_workers_pool_is_bit_identical(tmp_path):
    spec = _spec()
    serial = run_campaign(spec, tmp_path / "serial.ledger").report()
    pooled = run_campaign(
        spec, tmp_path / "pooled.ledger", workers=2
    ).report()
    assert _results_section(pooled) == _results_section(serial)


# ---- interruption and resume ------------------------------------------------


def test_interrupt_at_chunk_boundary_then_resume_is_bit_identical(tmp_path):
    spec = _spec()
    baseline = run_campaign(spec, tmp_path / "baseline.ledger").report()

    ledger = tmp_path / "interrupted.ledger"
    first = run_campaign(spec, ledger, max_chunks=2)
    assert first.interrupted and not first.complete
    assert first.chunks_executed == 2 and first.executed_runs == 16

    second = run_campaign(spec, ledger)
    assert second.complete and not second.interrupted
    # The resume counters prove checkpointed chunks did not re-execute.
    assert second.chunks_skipped == 2
    assert second.chunks_executed == 3
    assert second.executed_runs == 24
    assert _results_section(second.report()) == _results_section(baseline)


def test_torn_mid_chunk_append_discards_and_reruns(tmp_path):
    spec = _spec()
    baseline = run_campaign(spec, tmp_path / "baseline.ledger").report()

    ledger = tmp_path / "torn.ledger"
    run_campaign(spec, ledger, max_chunks=3)
    text = ledger.read_text()
    lines = text.splitlines()
    # Tear the final checkpoint mid-line, as a kill during append would.
    torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 3]
    ledger.write_text(torn)

    state = CampaignState.load(spec, ledger)
    assert state.torn_tails == 1
    assert state.chunks_done == 2  # the torn chunk does not count

    resumed = run_campaign(spec, ledger)
    assert resumed.complete
    assert resumed.chunks_skipped == 2
    assert resumed.chunks_executed == 3  # the torn chunk re-ran
    assert _results_section(resumed.report()) == _results_section(baseline)


def test_resume_on_complete_ledger_executes_nothing(tmp_path):
    spec = _spec()
    ledger = tmp_path / "grid.ledger"
    run_campaign(spec, ledger)
    again = run_campaign(spec, ledger)
    assert again.complete
    assert again.chunks_executed == 0
    assert again.executed_runs == 0
    assert again.chunks_skipped == 5


# ---- the shared result cache ------------------------------------------------


def test_warm_cache_resumes_without_executing_a_single_run(tmp_path):
    spec = _spec()
    cache = ResultCache()
    first = run_campaign(spec, tmp_path / "one.ledger", cache=cache)
    assert first.executed_runs == 40

    second = run_campaign(spec, tmp_path / "two.ledger", cache=cache)
    assert second.complete
    assert second.chunks_executed == 5  # fresh ledger: chunks re-checkpoint
    assert second.executed_runs == 0    # ...but every run is a cache hit
    assert second.cache_hits == 40
    assert _results_section(second.report()) == _results_section(
        first.report()
    )


def test_cache_and_server_are_mutually_exclusive(tmp_path):
    with pytest.raises(ConfigurationError, match="not both"):
        run_campaign(
            _spec(),
            tmp_path / "grid.ledger",
            cache=ResultCache(),
            server="http://127.0.0.1:1",
        )


# ---- sharding ---------------------------------------------------------------


def test_parse_shard_grammar():
    assert parse_shard("0/4") == (0, 4)
    assert parse_shard("3/4") == (3, 4)
    for bad in ("4/4", "-1/4", "1", "a/b", "1/0"):
        with pytest.raises(ConfigurationError):
            parse_shard(bad)


def test_sharded_ledgers_merge_into_the_same_report(tmp_path):
    spec = _spec()
    baseline = run_campaign(spec, tmp_path / "baseline.ledger").report()
    ledgers = []
    for index in range(2):
        path = tmp_path / f"shard{index}.ledger"
        ledgers.append(path)
        outcome = run_campaign(spec, path, shard=(index, 2))
        assert not outcome.complete  # each shard alone is partial
        assert outcome.chunks_foreign > 0
    state = campaign_status(spec, ledgers)
    assert state.complete
    merged = build_report(spec, state)
    assert _results_section(merged) == _results_section(baseline)


# ---- remote execution -------------------------------------------------------


def test_remote_campaign_is_bit_identical_and_shares_the_server_cache(tmp_path):
    server_mod = pytest.importorskip("repro.server")
    spec = _spec()
    baseline = run_campaign(spec, tmp_path / "local.ledger").report()
    with server_mod.ReproServer(port=0) as live:
        remote = run_campaign(spec, tmp_path / "remote.ledger", server=live.url)
        assert remote.complete
        assert remote.executed_runs == 40
        assert _results_section(remote.report()) == _results_section(baseline)
        # A second remote campaign: every run served from the server's
        # content-addressed cache, zero executions.
        again = run_campaign(spec, tmp_path / "again.ledger", server=live.url)
        assert again.executed_runs == 0
        assert again.remote_hits == 40
        assert _results_section(again.report()) == _results_section(baseline)


# ---- reports and pins -------------------------------------------------------


def test_report_requires_completeness_unless_partial(tmp_path):
    spec = _spec()
    ledger = tmp_path / "grid.ledger"
    run_campaign(spec, ledger, max_chunks=2)
    state = campaign_status(spec, ledger)
    with pytest.raises(ConfigurationError, match="not checkpointed"):
        build_report(spec, state)
    partial = build_report(spec, state, partial=True)
    assert not partial.complete
    assert len(partial.result_set) == 16
    assert any("incomplete" in message for message in partial.failures())


def test_pins_enforce_exactly(tmp_path):
    spec = _spec()
    outcome = run_campaign(spec, tmp_path / "grid.ledger")
    observed = outcome.report().result_set.worst()
    good = _spec(pins={"work": observed["work"], "effort": observed["effort"]})
    assert build_report(good, outcome.state).passed
    bad = _spec(pins={"work": observed["work"] + 1})
    failures = build_report(bad, outcome.state).failures()
    assert any("work" in message and "pinned" in message for message in failures)


def test_report_rejects_a_ledger_for_different_scenarios(tmp_path):
    # Same arithmetic shape (digest check passes structurally only if the
    # grids are equal) - here we forge a record with wrong keys.
    spec = _spec()
    ledger = tmp_path / "grid.ledger"
    run_campaign(spec, ledger)
    state = campaign_status(spec, ledger)
    record = state.completed[0]
    record["keys"] = list(reversed(record["keys"]))
    with pytest.raises(ConfigurationError, match="content address"):
        build_report(spec, state)


def test_report_table_and_json_shapes(tmp_path):
    spec = _spec()
    report = run_campaign(spec, tmp_path / "grid.ledger").report()
    table = report.table()
    assert "unit-grid" in table and "adversary" in table
    data = json.loads(report.to_json())
    assert data["complete"] is True
    assert data["results"]["runs"] == 40
    assert len(data["results"]["cells"]) == 8
    assert data["passed"] is True
    assert data["execution"]["chunks_executed"] == 5


# ---- the shipped campaign ---------------------------------------------------


def test_shipped_paper_grid_plans_cleanly():
    spec = load_campaign("campaigns/paper_grid.json")
    assert spec.total_runs == 200
    assert spec.total_chunks == 10
    assert set(spec.pins) == {
        "work", "messages", "effort", "rounds", "redundant_work", "crashes",
    }


# ---- the acceptance bar: >=10^4 runs, interrupted and resumed ---------------


def test_ten_thousand_run_campaign_interrupted_resumed_bit_identical(tmp_path):
    # 2 protocols x 2 n x 2500 seeds = 10_000 tiny runs in 100 chunks.
    spec = CampaignSpec(
        name="acceptance",
        base=Scenario(protocol="A", n=2, t=1, seed=0),
        seeds=list(range(2500)),
        protocols=["A", "B"],
        n_values=[2, 3],
        chunk_size=100,
    )
    assert spec.total_runs == 10_000

    cache = ResultCache()
    baseline = run_campaign(
        spec, tmp_path / "baseline.ledger", cache=cache
    )
    assert baseline.complete and baseline.executed_runs == 10_000

    ledger = tmp_path / "interrupted.ledger"
    first = run_campaign(spec, ledger, max_chunks=37)
    assert first.interrupted
    assert first.chunks_executed == 37

    resumed = run_campaign(spec, ledger)
    assert resumed.complete
    # Counters prove the checkpointed chunks were not re-executed.
    assert resumed.chunks_skipped == 37
    assert resumed.chunks_executed == 100 - 37
    assert resumed.executed_runs == 10_000 - 3_700

    assert _results_section(resumed.report()) == _results_section(
        baseline.report()
    )
