"""Batched async delivery must be observationally identical to per-copy.

``_ReferencePerCopyEngine`` re-implements the seed behaviour - one heap
event per message copy - by overriding only ``_send`` (the engine keeps
a per-copy ``deliver`` dispatch path for exactly this oracle).  Both
engines share RNG derivation, metrics, crash and failure-detector
handling, so any divergence is attributable to the batching.  Runs are
diffed on metrics, an ordered log of every work execution and
suspicion, and the run outcome, across crash patterns x delay models x
seeds - including fixed (deterministic) delays, where same-instant
batches actually form and the tie-breaking re-push path is exercised.
"""

import heapq

import pytest

from repro.core.protocol_a_async import build_async_protocol_a
from repro.sim.actions import Envelope, MessageKind
from repro.sim.async_engine import (
    AsyncEngine,
    AsyncProcess,
    _Event,
    fixed_delays,
    uniform_delays,
)
from repro.sim.failure_detector import FailureDetector
from repro.work.tracker import WorkTracker


class _ReferencePerCopyEngine(AsyncEngine):
    """The seed scheduling: one ``deliver`` heap event per message copy."""

    def _send(self, src, dst, payload, kind):
        envelope = Envelope(
            src=src, dst=dst, payload=payload, kind=kind, sent_round=int(self.now)
        )
        self.metrics.record_send(envelope)
        delay = max(0.0, self.delay_model(self.delay_rng, src, dst))
        heapq.heappush(
            self._heap,
            _Event(self.now + delay, next(self._seq), "deliver", dst, (src, payload, kind)),
        )


class _LoggingTracker(WorkTracker):
    """Work tracker that also logs the exact execution order."""

    def __init__(self, n):
        super().__init__(n)
        self.log = []

    def record(self, pid, unit, round_number):
        super().record(pid, unit, round_number)
        self.log.append((pid, unit, round_number))


class _LoggingProcess(AsyncProcess):
    """Wraps an async process, logging every handler invocation."""

    def __init__(self, inner, log):
        super().__init__(inner.pid, inner.t)
        self.inner = inner
        self.log = log

    # retired is the wrapper's own crashed/halted - the engine marks the
    # wrapper, and gates every dispatch on it, in both engines alike.

    def on_start(self, ctx):
        self.inner.on_start(ctx)

    def on_message(self, ctx, src, payload, kind):
        self.log.append(("msg", round(ctx.now, 9), self.pid, src, kind.value))
        self.inner.on_message(ctx, src, payload, kind)

    def on_wake(self, ctx, tag):
        self.log.append(("wake", round(ctx.now, 9), self.pid, tag))
        self.inner.on_wake(ctx, tag)

    def on_suspect(self, ctx, crashed_pid):
        self.log.append(("suspect", round(ctx.now, 9), self.pid, crashed_pid))
        self.inner.on_suspect(ctx, crashed_pid)


def _run(engine_cls, *, n, t, crash_times, delay_factory, detector_factory, seed):
    log = []
    processes = [
        _LoggingProcess(p, log) for p in build_async_protocol_a(n, t)
    ]
    tracker = _LoggingTracker(n)
    engine = engine_cls(
        processes,
        tracker=tracker,
        seed=seed,
        crash_times=dict(crash_times),
        delay_model=delay_factory(),
        failure_detector=detector_factory(),
    )
    result = engine.run()
    return result, tracker.log, log


# 4 scenario shapes x 3 seeds = 12 async combinations.
SCENARIOS = [
    ("nofail_uniform", {}, uniform_delays, FailureDetector),
    (
        "rolling_uniform",
        {pid: 4.0 + 9.0 * pid for pid in range(6)},
        uniform_delays,
        FailureDetector,
    ),
    (
        "crash_fixed_delay",
        {0: 5.0, 1: 17.0},
        lambda: fixed_delays(1.0),
        lambda: FailureDetector(min_delay=2.0, max_delay=2.0),
    ),
    (
        "slow_detector",
        {0: 1.0},
        lambda: uniform_delays(0.1, 8.0),
        lambda: FailureDetector(min_delay=40.0, max_delay=60.0),
    ),
]
SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,crash_times,delay_factory,detector_factory",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_batched_delivery_matches_per_copy_reference(
    name, crash_times, delay_factory, detector_factory, seed
):
    n, t = 60, 8
    fast, fast_work, fast_log = _run(
        AsyncEngine,
        n=n,
        t=t,
        crash_times=crash_times,
        delay_factory=delay_factory,
        detector_factory=detector_factory,
        seed=seed,
    )
    ref, ref_work, ref_log = _run(
        _ReferencePerCopyEngine,
        n=n,
        t=t,
        crash_times=crash_times,
        delay_factory=delay_factory,
        detector_factory=detector_factory,
        seed=seed,
    )
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert fast_work == ref_work
    assert fast_log == ref_log
    assert (fast.completed, fast.survivors, fast.halted) == (
        ref.completed,
        ref.survivors,
        ref.halted,
    )


def test_fixed_delays_form_real_batches():
    """Sanity: all-to-all traffic under deterministic delays really does
    collapse into multi-copy batches (one heap event per recipient per
    instant), and the batched run equals the per-copy run.  Async
    Protocol A has a single active sender, so the batching regime is
    agreement-style concurrent broadcast."""
    batch_sizes = []

    class _SpyEngine(AsyncEngine):
        def _deliver_batch(self, event):
            batch = self._batches.get((event.pid, event.time))
            if batch is not None:
                batch_sizes.append(len(batch))
            return super()._deliver_batch(event)

    t, rounds = 6, 3

    def build():
        class Gossip(AsyncProcess):
            def __init__(self, pid, total):
                super().__init__(pid, total)
                self.heard = []

            def on_start(self, ctx):
                self._broadcast(ctx, 0)

            def _broadcast(self, ctx, generation):
                for dst in range(self.t):
                    if dst != self.pid:
                        ctx.send(dst, (generation, self.pid), MessageKind.CONTROL)
                ctx.wake_in(2.0, generation + 1)

            def on_message(self, ctx, src, payload, kind):
                self.heard.append((round(ctx.now, 9), src, payload))

            def on_wake(self, ctx, tag):
                if tag >= rounds:
                    ctx.halt()
                else:
                    self._broadcast(ctx, tag)

        return [Gossip(pid, t) for pid in range(t)]

    fast_procs = build()
    fast = _SpyEngine(fast_procs, seed=1, delay_model=fixed_delays(1.0)).run()
    ref_procs = build()
    ref = _ReferencePerCopyEngine(
        ref_procs, seed=1, delay_model=fixed_delays(1.0)
    ).run()
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert [p.heard for p in fast_procs] == [p.heard for p in ref_procs]
    # Every broadcast generation lands at each recipient as ONE batch of
    # t-1 concurrent copies.
    assert max(batch_sizes) == t - 1


def test_zero_delay_self_feedback_delivers_in_order():
    """A 0-delay send issued *while its own batch is being delivered*
    joins that batch and is handed over after the already-queued copies."""

    delivered = []

    class Sender(AsyncProcess):
        def on_start(self, ctx):
            ctx.send(1, "first", MessageKind.CONTROL)
            ctx.send(1, "second", MessageKind.CONTROL)
            ctx.wake_in(100.0, "stop")

        def on_message(self, ctx, src, payload, kind):
            pass

        def on_wake(self, ctx, tag):
            ctx.halt()

    class Echo(AsyncProcess):
        def on_message(self, ctx, src, payload, kind):
            delivered.append(payload)
            if payload == "first":
                # 0-delay self-send: lands in the batch being delivered.
                ctx.send(1, "reflex", MessageKind.CONTROL)
            if len(delivered) >= 3:
                ctx.halt()

    procs = [Sender(0, 2), Echo(1, 2)]
    AsyncEngine(procs, seed=1, delay_model=fixed_delays(0.0)).run()
    assert delivered == ["first", "second", "reflex"]
