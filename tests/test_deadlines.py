"""Tests for the deadline algebra, including the Lemma 2.5 identities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.deadlines import (
    ProtocolADeadlines,
    ProtocolBDeadlines,
    ProtocolCDeadlines,
)
from repro.errors import ConfigurationError

# ---- Protocol A ---------------------------------------------------------


def test_dd_is_linear_in_pid():
    dl = ProtocolADeadlines(n=100, t=16, slack=0)
    assert dl.DD(0) == 0
    assert dl.DD(1) == 100 + 3 * 16
    assert dl.DD(5) == 5 * (100 + 3 * 16)


def test_dd_gap_exceeds_active_budget():
    dl = ProtocolADeadlines(n=64, t=9)
    for pid in range(8):
        assert dl.DD(pid + 1) - dl.DD(pid) >= dl.active_budget


def test_retirement_bound_matches_paper_shape():
    dl = ProtocolADeadlines(n=100, t=16, slack=0)
    assert dl.retirement_bound() == 16 * (100 + 48)  # nt + 3t^2


def test_dd_rejects_negative_pid():
    with pytest.raises(ConfigurationError):
        ProtocolADeadlines(n=10, t=4).DD(-1)


# ---- Protocol B ---------------------------------------------------------


def _b(n=160, t=16, slack=2):
    return ProtocolBDeadlines(n=n, t=t, slack=slack)


def test_pto_matches_paper_with_zero_slack():
    dl = ProtocolBDeadlines(n=160, t=16, slack=0)
    assert dl.PTO == 160 // 16 + 2  # n/t + 2


def test_gto_decreases_with_position():
    dl = _b()
    # Later positions within a group wait less (fewer takeovers ahead).
    values = [dl.GTO(pid) for pid in range(4)]  # group 1 positions 0..3
    assert values == sorted(values, reverse=True)
    assert values[0] == dl.GTO_first


def test_ddb_same_group_is_pto():
    dl = _b()
    assert dl.DDB(5, 4) == dl.PTO  # both in group 2


def test_ddb_rejects_lower_group_listener():
    dl = _b()
    with pytest.raises(ConfigurationError):
        dl.DDB(2, 7)  # j in group 1, i in group 2


def test_tt_same_group():
    dl = _b()
    assert dl.TT(6, 4) == 2 * dl.PTO


def test_tt_cross_group_includes_goahead_polling():
    dl = _b()
    assert dl.TT(9, 2) == dl.DDB(9, 2) + 1 * dl.PTO  # pos(9) = 1 in group 3


@st.composite
def _b_config(draw):
    t = draw(st.integers(min_value=4, max_value=100))
    n = draw(st.integers(min_value=1, max_value=500))
    return ProtocolBDeadlines(n=n, t=t, slack=draw(st.integers(0, 4)))


@given(_b_config(), st.data())
def test_lemma_2_5_part_a(dl, data):
    """TT(j, k) + TT(l, j) == TT(l, k) for l > j > k (Lemma 2.5a)."""
    t = dl.t
    if t < 3:
        return
    k = data.draw(st.integers(min_value=0, max_value=t - 3), label="k")
    j = data.draw(st.integers(min_value=k + 1, max_value=t - 2), label="j")
    l = data.draw(st.integers(min_value=j + 1, max_value=t - 1), label="l")
    assert dl.TT(j, k) + dl.TT(l, j) == dl.TT(l, k)


@given(_b_config(), st.data())
def test_lemma_2_5_part_b(dl, data):
    """TT(j,k) + DDB(l,j) == DDB(l,k) when g_j < g_l (Lemma 2.5b)."""
    t = dl.t
    groups = dl.groups
    if groups.num_groups < 2:
        return
    k = data.draw(st.integers(min_value=0, max_value=t - 3), label="k")
    j = data.draw(st.integers(min_value=k + 1, max_value=t - 2), label="j")
    l = data.draw(st.integers(min_value=j + 1, max_value=t - 1), label="l")
    if groups.group_of(j) >= groups.group_of(l):
        return
    assert dl.TT(j, k) + dl.DDB(l, j) == dl.DDB(l, k)


@given(_b_config())
def test_retirement_bound_dominates_tt(dl):
    if dl.t > 1:
        assert dl.retirement_bound() >= dl.TT(dl.t - 1, 0)


# ---- Protocol C ---------------------------------------------------------


def test_k_matches_paper_with_zero_slack():
    dl = ProtocolCDeadlines(n=32, t=8, slack=0)
    assert dl.K == 5 * 8 + 2 * 3  # 5t + 2 log t


def test_batched_k_is_larger():
    plain = ProtocolCDeadlines(n=64, t=8)
    batched = ProtocolCDeadlines(n=64, t=8, batched=True)
    assert batched.K > plain.K


def test_d_formula_m_zero_staggers_by_pid():
    dl = ProtocolCDeadlines(n=8, t=4, slack=0)
    # Highest-numbered know-nothing process times out first.
    values = [dl.D(pid, 0) for pid in range(4)]
    assert values == sorted(values, reverse=True)


def test_d_rejects_out_of_range_view():
    dl = ProtocolCDeadlines(n=8, t=4)
    with pytest.raises(ConfigurationError):
        dl.D(0, -1)
    with pytest.raises(ConfigurationError):
        dl.D(0, 8 + 4)


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=12),
)
def test_d_chain_inequality(t, n):
    """D(i, m) > (n+t-m) K + sum_{m'>m} D(i, m') - the Lemma 3.4(b)
    telescoping that makes higher-ranked processes retire first."""
    dl = ProtocolCDeadlines(n=n, t=t)
    horizon = n + t - 1
    for m in range(1, horizon):
        tail = sum(dl.D(0, m2) for m2 in range(m + 1, horizon + 1))
        assert dl.D(0, m) > (n + t - m) * dl.K + tail


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=10),
)
def test_d_zero_dominates_all_positive_views(t, n):
    dl = ProtocolCDeadlines(n=n, t=t)
    tail = sum(dl.D(0, m) for m in range(1, n + t))
    for pid in range(t - 1):
        assert dl.D(pid, 0) > (n + t) * dl.K + dl.D(pid + 1, 0) + tail
