"""Packed Broadcast fan-out must be observationally identical to the
pre-broadcast-object expanded path, on both engines.

The tentpole claim of the lazy-broadcast work: a protocol that emits one
shared-payload :class:`Broadcast` behaves *bit-identically* to the same
protocol whose batches are pre-expanded into per-copy ``Send`` lists and
committed copy by copy (the pre-PR path) - same metrics, same
payload-level traces, same RNG draws (adversary victim picks,
crash-mid-broadcast subset draws, async delay draws), same outcome.

Two oracles re-create the pre-PR behaviour exactly:

* ``_ExpandedEngine`` (sync) wraps every process so its actions are
  expanded to legacy ``List[Send]`` *before* the adversary and the
  crash censor see them, and overrides ``_post_batch`` with the seed
  engine's per-copy commit (one ``Envelope`` tuple per live recipient,
  per-copy kind counting) - so the packed classes never touch the
  reference execution;
* ``_ExpandedAsyncEngine`` overrides ``_broadcast`` to route every copy
  through the per-copy ``_send`` path (one delay draw and one
  per-(recipient, due) batch entry per copy), i.e. exactly what the
  engine did before broadcasts stayed packed.

Running fast vs oracle over seeds x protocols x adversaries (including
crash-mid-broadcast partial delivery) pins the rewrite the way
``test_scheduler_equivalence.py`` pinned the scheduler and
``test_bitset_equivalence.py`` pinned the bitsets.
"""

from typing import Dict, List

import pytest

from repro.core.registry import build_processes
from repro.sim.actions import (
    Action,
    Broadcast,
    Envelope,
    MessageKind,
    Send,
    as_send_list,
    broadcast,
    summarize_sends,
)
from repro.sim.adversary import (
    Cascade,
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    RandomCrashes,
    StaggeredWorkKills,
)
from repro.sim.async_engine import AsyncEngine, fixed_delays, uniform_delays
from repro.sim.crashes import CrashDirective, CrashPhase
from repro.sim.engine import Engine
from repro.sim.failure_detector import FailureDetector
from repro.sim.process import Process
from repro.sim.trace import Trace
from repro.work.tracker import WorkTracker

# =====================================================================
# The synchronous oracle: pre-PR expanded path
# =====================================================================


class _ExpandingProcess(Process):
    """Wraps a process so every emitted batch is the legacy expanded
    ``List[Send]`` - upstream of the adversary, the censor and the
    commit, exactly as pre-PR protocols behaved."""

    def __init__(self, inner: Process):
        super().__init__(inner.pid, inner.t)
        self.inner = inner

    @property
    def is_active(self) -> bool:
        return (not self.retired) and self.inner.is_active

    def wake_round(self):
        if self.retired:
            return None
        return self.inner.wake_round()

    def on_round(self, round_number: int, inbox) -> Action:
        action = self.inner.on_round(round_number, inbox)
        if isinstance(action.sends, Broadcast):
            return Action(
                work=action.work, sends=as_send_list(action.sends), halt=action.halt
            )
        return action


class _ExpandedEngine(Engine):
    """The seed engine's per-copy batch commit, kept as an oracle: one
    kind-count bump and one :class:`Envelope` tuple per copy, no packing,
    no shared envelopes."""

    def __init__(self, *args, **kwargs):
        # The oracle appends straight into the per-copy mailboxes, so it
        # must run the pure-python store (the packed engine under test
        # keeps its default fastpath, making this a cross-path oracle).
        kwargs["fastpath"] = "off"
        super().__init__(*args, **kwargs)

    def _post_batch(self, src: int, sends: List[Send], round_number: int) -> None:
        kind_counts: Dict[MessageKind, int] = {}
        for send in sends:
            kind = send.kind
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
        self.metrics.record_send_batch(src, kind_counts, len(sends), round_number)
        trace = self.trace
        if trace.enabled:
            for send in sends:
                trace.emit(
                    round_number, "send", src, (send.kind.value, send.dst, send.payload)
                )
        for send in sends:
            dst = send.dst
            if 0 <= dst < self.t and not self.processes[dst].retired:
                self._mailboxes[dst].append(
                    Envelope(src, dst, send.payload, send.kind, round_number)
                )
                self._note_mail(dst, round_number)


def _build(protocol: str, n: int, t: int):
    if protocol == "D-dynamic":
        return build_processes(
            protocol, n, t, schedule="arrivals:0x%d" % n, cycle_length=12
        )
    return build_processes(protocol, n, t)


def _run_sync(engine_cls, wrap, protocol, n, t, adversary_factory, seed):
    processes = _build(protocol, n, t)
    if wrap:
        processes = [_ExpandingProcess(p) for p in processes]
    trace = Trace(enabled=True)
    engine = engine_cls(
        processes,
        tracker=WorkTracker(n),
        adversary=adversary_factory() if adversary_factory else None,
        seed=seed,
        strict_invariants=protocol.lower() in {"a", "b", "c", "naive"},
        trace=trace,
    )
    result = engine.run()
    events = [(e.round, e.kind, e.pid, e.detail) for e in trace]
    return result, events


def _assert_sync_equivalent(fast, fast_events, ref, ref_events):
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert len(fast_events) == len(ref_events)
    # Payload-level diff: detail tuples carry the wire payloads.
    for fast_event, ref_event in zip(fast_events, ref_events):
        assert fast_event == ref_event, (fast_event, ref_event)
    assert (fast.completed, fast.survivors, fast.halted) == (
        ref.completed,
        ref.survivors,
        ref.halted,
    )


# 10 protocol/adversary shapes x 3 seeds = 30 synchronous combinations.
SYNC_COMBOS = [
    ("A", 40, 8, None),
    ("A", 48, 8, lambda: RandomCrashes(4, max_action_index=12)),
    ("A", 40, 6, lambda: CrashMidBroadcast(victims=(0, 2), min_batch=2)),
    ("B", 40, 8, lambda: KillActive(5, actions_before_kill=2)),
    ("C", 24, 6, lambda: KillActive(4, actions_before_kill=3)),
    ("C-naive", 18, 6, lambda: Cascade(lead_units=6, redo_units=2)),
    ("D", 96, 8, lambda: RandomCrashes(4, max_action_index=10)),
    ("D", 96, 8, lambda: CrashMidBroadcast(victims=(1, 4), min_batch=3)),
    (
        "D",
        96,
        8,
        lambda: FixedSchedule(
            [
                CrashDirective(pid=1, at_round=5, phase=CrashPhase.DURING_SEND),
                CrashDirective(pid=4, at_round=13, phase=CrashPhase.AFTER_WORK),
            ]
        ),
    ),
    ("D-dynamic", 48, 8, lambda: StaggeredWorkKills.plan([(2, 1), (5, 2)])),
]
SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "protocol,n,t,adversary_factory",
    SYNC_COMBOS,
    ids=[
        f"{c[0]}-n{c[1]}-t{c[2]}-{'adv' if c[3] else 'noadv'}-{i}"
        for i, c in enumerate(SYNC_COMBOS)
    ],
)
def test_packed_broadcasts_match_expanded_reference(
    protocol, n, t, adversary_factory, seed
):
    fast, fast_events = _run_sync(
        Engine, False, protocol, n, t, adversary_factory, seed
    )
    ref, ref_events = _run_sync(
        _ExpandedEngine, True, protocol, n, t, adversary_factory, seed
    )
    _assert_sync_equivalent(fast, fast_events, ref, ref_events)


# =====================================================================
# Crash-mid-broadcast stays a recipients subset (never re-expanded)
# =====================================================================


def test_censored_broadcast_stays_packed_subset():
    bcast = broadcast(range(1, 7), ("payload",), MessageKind.AGREEMENT)
    directive = CrashDirective(
        pid=0, at_round=0, phase=CrashPhase.DURING_SEND, keep=frozenset({2, 4, 9})
    )
    import random

    survived = directive.censor(Action(work=3, sends=bcast), random.Random(1))
    assert survived.work == 3
    assert isinstance(survived.sends, Broadcast)
    assert survived.sends.payload is bcast.payload  # shared, not re-allocated
    assert summarize_sends(survived.sends) == (2, 4)


def test_censored_broadcast_random_subset_matches_legacy_draws():
    """The random-subset censor must consume RNG identically for the
    packed and the legacy spelling of one broadcast."""
    import random

    legacy = [Send(dst, ("p",), MessageKind.CONTROL) for dst in range(5)]
    packed = broadcast(range(5), ("p",), MessageKind.CONTROL)
    directive = CrashDirective(pid=0, at_round=0, phase=CrashPhase.DURING_SEND)
    for seed in range(20):
        ref = directive.censor(Action(sends=list(legacy)), random.Random(seed))
        fast = directive.censor(Action(sends=packed), random.Random(seed))
        assert isinstance(fast.sends, Broadcast)
        assert summarize_sends(fast.sends) == summarize_sends(ref.sends)


# =====================================================================
# Both spellings of one batch render identically (packed vs legacy)
# =====================================================================


class _Script(Process):
    """Emits a fixed list of (round, Action) pairs."""

    def __init__(self, pid, t, script):
        super().__init__(pid, t)
        self.script = list(script)

    def wake_round(self):
        if self.retired or not self.script:
            return None
        return self.script[0][0]

    def on_round(self, round_number, inbox):
        if self.script and self.script[0][0] <= round_number:
            return self.script.pop(0)[1]
        return Action.idle()


def _render_run(batch):
    sender = _Script(0, 4, [(0, Action(sends=batch)), (1, Action.halting())])
    peers = [_Script(pid, 4, [(3, Action.halting())]) for pid in (1, 2, 3)]
    trace = Trace(enabled=True)
    result = Engine([sender] + peers, seed=5, trace=trace).run()
    return result.metrics.as_dict(), trace.render()


def test_packed_and_legacy_spellings_render_identically():
    payload = ("ckpt", 7)
    packed = broadcast((1, 2, 3), payload, MessageKind.CONTROL)
    legacy = [Send(dst, payload, MessageKind.CONTROL) for dst in (1, 2, 3)]
    assert summarize_sends(packed) == summarize_sends(legacy) == (1, 2, 3)
    packed_metrics, packed_trace = _render_run(packed)
    legacy_metrics, legacy_trace = _render_run(legacy)
    assert packed_metrics == legacy_metrics
    assert packed_trace == legacy_trace
    assert "send" in packed_trace


def test_envelope_views_keep_tuple_semantics_for_legacy_emitters():
    """A legacy uniform List[Send] auto-packs, so its recipients receive
    EnvelopeView objects - which must honour the full tuple protocol an
    Envelope NamedTuple gave out-of-tree protocols: unpacking, indexing,
    sorting without a key, equality and hashing."""
    from repro.sim.actions import EnvelopeView, SharedEnvelope

    shared = SharedEnvelope(0, ("p",), MessageKind.CONTROL, 7)
    view = EnvelopeView(shared, 2)
    equivalent = Envelope(0, 2, ("p",), MessageKind.CONTROL, 7)
    src, dst, payload, kind, stamp = view  # unpacks like the NamedTuple
    assert (src, dst, payload, kind, stamp) == tuple(equivalent)
    assert view[1] == 2 and len(view) == 5
    assert view == equivalent and equivalent == view
    assert hash(view) == hash(equivalent)
    assert view in {equivalent}
    later = EnvelopeView(SharedEnvelope(0, ("p",), MessageKind.CONTROL, 9), 1)
    later_tuple = Envelope(0, 1, ("p",), MessageKind.CONTROL, 9)
    # Key-less sorting follows exactly the NamedTuple's field order
    # (src, dst, ... - so `later` sorts first on its smaller dst).
    assert [tuple(e) for e in sorted([view, later])] == sorted(
        [tuple(equivalent), tuple(later_tuple)]
    )
    assert later < view and view > later
    assert (later < view) == (later_tuple < equivalent)

    # End to end: a process that unpacks its inbox envelopes as tuples
    # keeps working when its peer sends an auto-packable legacy batch.
    seen = []

    class _Unpacker(_Script):
        def on_round(self, round_number, inbox):
            for envelope in inbox:
                seen.append(tuple(envelope))
            return super().on_round(round_number, inbox)

    sender = _Script(
        0,
        2,
        [
            (0, Action(sends=[Send(1, ("legacy",), MessageKind.CONTROL)])),
            (1, Action.halting()),
        ],
    )
    receiver = _Unpacker(1, 2, [(3, Action.halting())])
    Engine([sender, receiver], seed=1).run()
    assert seen == [(0, 1, ("legacy",), MessageKind.CONTROL, 0)]


def test_broadcast_slice_returns_send_list():
    bcast = broadcast((3, 5, 9), ("p",), MessageKind.CONTROL)
    assert bcast[0:2] == [
        Send(3, ("p",), MessageKind.CONTROL),
        Send(5, ("p",), MessageKind.CONTROL),
    ]
    assert bcast[-1] == Send(9, ("p",), MessageKind.CONTROL)
    assert list(bcast[::2]) == [bcast[0], bcast[2]]


def test_mixed_legacy_batch_keeps_per_copy_path():
    """A batch mixing kinds cannot pack; it must still commit faithfully."""
    batch = [
        Send(1, ("reply",), MessageKind.POLL_REPLY),
        Send(2, ("view",), MessageKind.ORDINARY),
    ]
    metrics, trace = _render_run(list(batch))
    assert metrics["messages"] == 2
    assert metrics["messages_by_kind"] == {"ordinary": 1, "poll_reply": 1}
    assert "poll_reply" in trace and "ordinary" in trace


# =====================================================================
# The asynchronous oracle: per-copy broadcast expansion
# =====================================================================


class _ExpandedAsyncEngine(AsyncEngine):
    """Pre-PR async behaviour: a broadcast is just its per-copy sends."""

    def _broadcast(self, src, bcast):
        for send in bcast:
            self._send(src, send.dst, send.payload, send.kind)


class _LoggingTracker(WorkTracker):
    def __init__(self, n):
        super().__init__(n)
        self.log = []

    def record(self, pid, unit, round_number):
        super().record(pid, unit, round_number)
        self.log.append((pid, unit, round_number))


from repro.core.protocol_a_async import build_async_protocol_a  # noqa: E402
from repro.sim.async_engine import AsyncProcess  # noqa: E402


class _LoggingProcess(AsyncProcess):
    """Logs every handler invocation (payload-level, stamped)."""

    def __init__(self, inner, log):
        super().__init__(inner.pid, inner.t)
        self.inner = inner
        self.log = log

    def on_start(self, ctx):
        self.inner.on_start(ctx)

    def on_message(self, ctx, src, payload, kind):
        self.log.append(("msg", round(ctx.now, 9), self.pid, src, payload, kind.value))
        self.inner.on_message(ctx, src, payload, kind)

    def on_wake(self, ctx, tag):
        self.log.append(("wake", round(ctx.now, 9), self.pid, tag))
        self.inner.on_wake(ctx, tag)

    def on_suspect(self, ctx, crashed_pid):
        self.log.append(("suspect", round(ctx.now, 9), self.pid, crashed_pid))
        self.inner.on_suspect(ctx, crashed_pid)


def _run_async(engine_cls, *, n, t, crash_times, delay_factory, detector_factory, seed):
    log = []
    processes = [_LoggingProcess(p, log) for p in build_async_protocol_a(n, t)]
    tracker = _LoggingTracker(n)
    engine = engine_cls(
        processes,
        tracker=tracker,
        seed=seed,
        crash_times=dict(crash_times),
        delay_model=delay_factory(),
        failure_detector=detector_factory(),
    )
    result = engine.run()
    return result, tracker.log, log


# 4 scenario shapes x 3 seeds = 12 asynchronous combinations.
ASYNC_COMBOS = [
    ("nofail_uniform", {}, uniform_delays, FailureDetector),
    (
        "rolling_uniform",
        {pid: 4.0 + 9.0 * pid for pid in range(6)},
        uniform_delays,
        FailureDetector,
    ),
    (
        "crash_fixed_delay",
        {0: 5.0, 1: 17.0},
        lambda: fixed_delays(1.0),
        lambda: FailureDetector(min_delay=2.0, max_delay=2.0),
    ),
    (
        "slow_detector",
        {0: 1.0},
        lambda: uniform_delays(0.1, 8.0),
        lambda: FailureDetector(min_delay=40.0, max_delay=60.0),
    ),
]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "name,crash_times,delay_factory,detector_factory",
    ASYNC_COMBOS,
    ids=[s[0] for s in ASYNC_COMBOS],
)
def test_async_packed_broadcasts_match_per_copy_reference(
    name, crash_times, delay_factory, detector_factory, seed
):
    n, t = 60, 8
    fast, fast_work, fast_log = _run_async(
        AsyncEngine,
        n=n,
        t=t,
        crash_times=crash_times,
        delay_factory=delay_factory,
        detector_factory=detector_factory,
        seed=seed,
    )
    ref, ref_work, ref_log = _run_async(
        _ExpandedAsyncEngine,
        n=n,
        t=t,
        crash_times=crash_times,
        delay_factory=delay_factory,
        detector_factory=detector_factory,
        seed=seed,
    )
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert fast_work == ref_work
    assert fast_log == ref_log
    assert (fast.completed, fast.survivors, fast.halted) == (
        ref.completed,
        ref.survivors,
        ref.halted,
    )


def test_async_broadcast_schedules_one_event_per_due_instant():
    """Under a deterministic delay model a t-1-recipient broadcast must
    enter the heap as a single deliver_bcast event, not t-1 events."""
    from repro.sim.actions import broadcast as make_broadcast

    pushed = []

    class _SpyEngine(AsyncEngine):
        def _broadcast(self, src, bcast):
            before = len(self._heap)
            super()._broadcast(src, bcast)
            pushed.append(len(self._heap) - before)

    class Gossip(AsyncProcess):
        def on_start(self, ctx):
            others = [pid for pid in range(self.t) if pid != self.pid]
            ctx.broadcast(make_broadcast(others, ("gen", self.pid), MessageKind.CONTROL))
            ctx.wake_in(5.0, "stop")

        def on_message(self, ctx, src, payload, kind):
            pass

        def on_wake(self, ctx, tag):
            ctx.halt()

    t = 8
    engine = _SpyEngine([Gossip(pid, t) for pid in range(t)], seed=1, delay_model=fixed_delays(1.0))
    result = engine.run()
    assert result.halted == t
    assert engine.metrics.messages_total == t * (t - 1)
    assert pushed == [1] * t  # one heap event per broadcast, not t-1
