"""Power-law fitting helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.scaling import doubling_ratios, fit_power_law
from repro.errors import ConfigurationError


def test_exact_quadratic():
    xs = [2.0, 4.0, 8.0, 16.0]
    ys = [x * x for x in xs]
    fit = fit_power_law(xs, ys)
    assert abs(fit.exponent - 2.0) < 1e-9
    assert abs(fit.coefficient - 1.0) < 1e-9
    assert fit.residual < 1e-9


def test_exact_sqrt_with_coefficient():
    xs = [1.0, 4.0, 9.0, 100.0]
    ys = [5.0 * math.sqrt(x) for x in xs]
    fit = fit_power_law(xs, ys)
    assert abs(fit.exponent - 0.5) < 1e-9
    assert abs(fit.coefficient - 5.0) < 1e-9


def test_predict_round_trips():
    fit = fit_power_law([2.0, 4.0, 8.0], [10.0, 40.0, 160.0])
    assert abs(fit.predict(16.0) - 640.0) < 1e-6


def test_noisy_data_reports_residual():
    fit = fit_power_law([2.0, 4.0, 8.0, 16.0], [4.1, 15.7, 65.0, 254.0])
    assert 1.9 < fit.exponent < 2.1
    assert fit.residual > 0


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0], [1.0])
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0, 2.0], [1.0])
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0, -2.0], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0, 1.0], [1.0, 2.0])


def test_doubling_ratios():
    assert doubling_ratios([1.0, 2.0, 8.0]) == [2.0, 4.0]
    with pytest.raises(ConfigurationError):
        doubling_ratios([1.0, 0.0])


@given(
    exponent=st.floats(min_value=0.1, max_value=3.0),
    coefficient=st.floats(min_value=0.1, max_value=100.0),
)
def test_fit_recovers_planted_power_law(exponent, coefficient):
    xs = [2.0, 4.0, 8.0, 16.0, 32.0]
    ys = [coefficient * x ** exponent for x in xs]
    fit = fit_power_law(xs, ys)
    assert abs(fit.exponent - exponent) < 1e-6
    assert fit.residual < 1e-6
