"""Protocol A: behaviour, takeover logic and Theorem 2.3 bounds."""

import math

import pytest

from repro import run_protocol
from repro.analysis import bounds
from repro.sim.adversary import (
    CrashMidBroadcast,
    FixedSchedule,
    KillActive,
    RandomCrashes,
)
from repro.sim.crashes import CrashDirective
from repro.sim.trace import Trace
from tests.conftest import adversary_battery, all_but_one_dead

N, T = 128, 16


def test_failure_free_process_zero_does_everything():
    trace = Trace(enabled=True)
    result = run_protocol("A", N, T, seed=1, trace=trace)
    assert result.completed
    assert result.metrics.work_total == N  # no redundancy without failures
    assert result.metrics.redundant_work() == 0
    assert trace.activations() == [(0, 0)]
    workers = {event.pid for event in trace.of_kind("work")}
    assert workers == {0}


def test_failure_free_message_count_structure():
    result = run_protocol("A", N, T, seed=1)
    metrics = result.metrics
    # t partial checkpoints of sqrt(t)-1 messages each.
    from repro.sim.actions import MessageKind

    assert metrics.messages_of(MessageKind.PARTIAL_CHECKPOINT) == T * (
        int(math.isqrt(T)) - 1
    )
    assert metrics.messages_of(MessageKind.FULL_CHECKPOINT) > 0


def test_takeover_after_leader_crash():
    trace = Trace(enabled=True)
    adversary = FixedSchedule([CrashDirective(pid=0, at_round=5)])
    result = run_protocol("A", N, T, adversary=adversary, seed=2, trace=trace)
    assert result.completed
    pids = [pid for _, pid in trace.activations()]
    assert pids == [0, 1]  # process 1 takes over, in order


def test_takeovers_happen_in_process_order():
    trace = Trace(enabled=True)
    adversary = KillActive(5, actions_before_kill=4)
    result = run_protocol("A", N, T, adversary=adversary, seed=3, trace=trace)
    assert result.completed
    pids = [pid for _, pid in trace.activations()]
    assert pids == sorted(pids)
    assert len(pids) == 6  # 5 killed actives + final survivor


def test_lone_survivor_redoes_unreported_work():
    result = run_protocol("A", N, T, adversary=all_but_one_dead(T), seed=4)
    assert result.completed
    assert result.survivors == 1
    # The survivor heard nothing: it performs all N units itself.
    assert result.metrics.work_by_process[T - 1] == N


def test_crash_mid_broadcast_subset_still_recovers():
    for seed in range(6):
        result = run_protocol(
            "A", N, T, adversary=CrashMidBroadcast(list(range(6))), seed=seed
        )
        assert result.completed


def test_work_never_lost_when_crash_is_after_work():
    # Crash the active right after each unit: maximum unreported work.
    adversary = KillActive(T - 1, actions_before_kill=1)
    result = run_protocol("A", N, T, adversary=adversary, seed=5)
    assert result.completed
    assert result.metrics.work_total <= bounds.protocol_a_work(N, T).value


@pytest.mark.parametrize("seed", range(8))
def test_theorem_2_3_bounds_random_adversary(seed):
    result = run_protocol(
        "A", N, T, adversary=RandomCrashes(T - 1, max_action_index=25), seed=seed
    )
    metrics = result.metrics
    assert result.completed
    assert metrics.work_total <= bounds.protocol_a_work(N, T).value
    assert metrics.messages_total <= bounds.protocol_a_messages(N, T).value


def test_theorem_2_3_bounds_battery():
    worst_work = worst_msgs = 0
    for factory in adversary_battery(T):
        for seed in range(3):
            result = run_protocol("A", N, T, adversary=factory(), seed=seed)
            assert result.completed
            worst_work = max(worst_work, result.metrics.work_total)
            worst_msgs = max(worst_msgs, result.metrics.messages_total)
    assert worst_work <= bounds.protocol_a_work(N, T).value
    assert worst_msgs <= bounds.protocol_a_messages(N, T).value


def test_single_active_invariant_enforced():
    # strict_invariants=True is the registry default for A; a violation
    # would raise InvariantViolation.  Run a hostile battery to probe it.
    for factory in adversary_battery(T):
        result = run_protocol("A", 64, T, adversary=factory(), seed=7)
        assert result.completed


def test_general_t_not_a_perfect_square():
    for t in (3, 7, 11, 18):
        result = run_protocol(
            "A", 50, t, adversary=RandomCrashes(t - 1, max_action_index=10), seed=1
        )
        assert result.completed


def test_n_smaller_than_t():
    result = run_protocol("A", 5, 16, adversary=KillActive(8), seed=1)
    assert result.completed
    assert result.metrics.work_total <= 3 * max(5, 16)


def test_n_zero_terminates_cleanly():
    result = run_protocol("A", 0, 9, seed=1)
    assert result.completed
    assert result.metrics.work_total == 0


def test_t_one_degenerates_to_solo_worker():
    result = run_protocol("A", 20, 1, seed=1)
    assert result.completed
    assert result.metrics.work_total == 20
    assert result.metrics.messages_total == 0


def test_epoch_offsets_all_deadlines():
    from repro.core.protocol_a import ProtocolAProcess

    process = ProtocolAProcess(2, 9, 18, epoch=100)
    assert process.activation_deadline() == 100 + process.deadlines.DD(2)


def test_rounds_within_paper_bound_modulo_slack():
    result = run_protocol("A", N, T, adversary=KillActive(T - 1), seed=9)
    slack_allowance = T * 2 * 2  # slack per deadline times t deadlines
    assert (
        result.metrics.retire_round
        <= bounds.protocol_a_rounds(N, T).value + slack_allowance
    )
