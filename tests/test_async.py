"""Asynchronous engine, failure detector, and async Protocol A."""

import math

import pytest

from repro.core.protocol_a_async import build_async_protocol_a
from repro.errors import SimulationStalled
from repro.sim.async_engine import AsyncEngine, AsyncProcess, uniform_delays
from repro.sim.failure_detector import FailureDetector
from repro.work.tracker import WorkTracker

N, T = 100, 16


def _run(crash_times=None, seed=0, delays=None, detector=None, n=N, t=T):
    processes = build_async_protocol_a(n, t)
    tracker = WorkTracker(n)
    engine = AsyncEngine(
        processes,
        tracker=tracker,
        seed=seed,
        crash_times=crash_times or {},
        delay_model=delays or uniform_delays(),
        failure_detector=detector or FailureDetector(),
    )
    return engine.run(), processes


# ---- failure detector semantics ---------------------------------------------


class _Probe(AsyncProcess):
    """Records suspicion events; halts when told."""

    def __init__(self, pid, t):
        super().__init__(pid, t)
        self.suspicions = []

    def on_start(self, ctx):
        ctx.wake_in(1000.0, "stop")

    def on_message(self, ctx, src, payload, kind):
        pass

    def on_wake(self, ctx, tag):
        if tag == "stop":
            ctx.halt()

    def on_suspect(self, ctx, crashed_pid):
        self.suspicions.append((ctx.now, crashed_pid))


def test_detector_complete_every_crash_reported():
    probes = [_Probe(pid, 3) for pid in range(3)]
    engine = AsyncEngine(probes, seed=1, crash_times={0: 5.0})
    engine.run()
    for probe in probes[1:]:
        assert [pid for _, pid in probe.suspicions] == [0]


def test_detector_sound_no_crash_no_report():
    probes = [_Probe(pid, 3) for pid in range(3)]
    engine = AsyncEngine(probes, seed=1)
    engine.run()
    assert all(not probe.suspicions for probe in probes)


def test_detector_delay_window_respected():
    probes = [_Probe(pid, 2) for pid in range(2)]
    detector = FailureDetector(min_delay=3.0, max_delay=4.0)
    engine = AsyncEngine(
        probes, seed=2, crash_times={0: 10.0}, failure_detector=detector
    )
    engine.run()
    (when, who), = probes[1].suspicions
    assert who == 0
    assert 13.0 <= when <= 14.0


# ---- async Protocol A ----------------------------------------------------------


def test_failure_free_effort_matches_sync():
    result, _ = _run(seed=1)
    assert result.completed
    assert result.metrics.work_total == N
    assert result.metrics.messages_total <= 9 * T * math.isqrt(T)


def test_leader_crash_triggers_suspicion_takeover():
    result, processes = _run(crash_times={0: 5.0}, seed=2)
    assert result.completed
    assert processes[1].active or processes[1].halted


def test_rolling_crashes():
    crash_times = {pid: 4.0 + 9.0 * pid for pid in range(T - 1)}
    result, _ = _run(crash_times=crash_times, seed=3)
    assert result.completed
    assert result.survivors == 1


def test_work_bound_holds_under_async_crashes():
    for seed in range(6):
        crash_times = {pid: 2.0 + 6.0 * pid for pid in range(seed % (T - 1))}
        result, _ = _run(crash_times=crash_times, seed=seed)
        assert result.completed
        assert result.metrics.work_total <= 3 * max(N, T)
        assert result.metrics.messages_total <= 9 * T * math.isqrt(T)


def test_extreme_delay_jitter_does_not_break_safety():
    result, _ = _run(
        crash_times={0: 3.0, 1: 30.0},
        seed=4,
        delays=uniform_delays(0.1, 50.0),
    )
    assert result.completed


def test_slow_detector_just_slows_takeover():
    detector = FailureDetector(min_delay=200.0, max_delay=300.0)
    result, _ = _run(crash_times={0: 1.0}, seed=5, detector=detector)
    assert result.completed
    assert result.metrics.retire_round >= 200  # waited for the detector


def test_clean_termination_is_never_suspected():
    # No crashes: nobody but process 0 must ever activate.
    result, processes = _run(seed=6)
    assert result.completed
    assert all(not p.active for p in processes[1:])


def test_non_square_t_async():
    result, _ = _run(n=45, t=7, crash_times={0: 4.0, 1: 9.0}, seed=7)
    assert result.completed


def test_stall_detection_in_async_engine():
    class Silent(AsyncProcess):
        def on_message(self, ctx, src, payload, kind):
            pass

    with pytest.raises(SimulationStalled):
        AsyncEngine([Silent(0, 1)], seed=1).run()
