"""The Section 1 straw-man baselines: exact complexity accounting."""

import pytest

from repro import run_protocol
from repro.sim.adversary import FixedSchedule, KillActive, RandomCrashes
from repro.sim.crashes import CrashDirective
from tests.conftest import all_but_one_dead

# ---- replicate-everywhere ------------------------------------------------


def test_replicate_failure_free_costs_tn_work_zero_messages():
    result = run_protocol("replicate", 50, 8, seed=1)
    assert result.completed
    assert result.metrics.work_total == 8 * 50
    assert result.metrics.messages_total == 0
    assert result.metrics.retire_round == 49  # n rounds: 0..n-1


def test_replicate_survives_any_crashes_without_coordination():
    adversary = FixedSchedule(
        [CrashDirective(pid=pid, at_round=pid * 3) for pid in range(7)]
    )
    result = run_protocol("replicate", 50, 8, adversary=adversary, seed=2)
    assert result.completed
    assert result.survivors == 1


def test_replicate_work_scales_with_survivor_lifetime():
    result = run_protocol("replicate", 50, 8, adversary=all_but_one_dead(8), seed=3)
    assert result.completed
    assert result.metrics.work_total == 50  # only the survivor worked


# ---- single-worker checkpoint-to-all ------------------------------------------


def test_naive_interval_one_work_optimal_but_message_heavy():
    n, t = 60, 8
    result = run_protocol("naive", n, t, interval=1, seed=1)
    assert result.completed
    assert result.metrics.work_total == n
    # One broadcast to t-1 others after every unit: ~tn messages.
    assert result.metrics.messages_total == n * (t - 1)


def test_naive_work_bound_with_failures():
    n, t = 60, 8
    adversary = KillActive(t - 1, actions_before_kill=2)
    result = run_protocol("naive", n, t, interval=1, adversary=adversary, seed=2)
    assert result.completed
    # Paper: at most n + t - 1 units ever performed with k = n checkpoints.
    assert result.metrics.work_total <= n + t - 1


def test_naive_large_interval_wastes_work_not_messages():
    n, t = 60, 8
    adversary = KillActive(t - 1, actions_before_kill=5)
    result = run_protocol("naive", n, t, interval=30, adversary=adversary, seed=3)
    assert result.completed
    # Few checkpoints -> few messages but redone work up to interval per crash.
    assert result.metrics.messages_total <= (n // 30 + 2) * (t - 1) * t
    assert result.metrics.work_total > n


def test_naive_checkpoint_interval_tradeoff_is_monotone():
    """Larger intervals cannot increase messages; smaller intervals cannot
    increase redone work (the Section 2 motivation)."""
    n, t = 120, 9
    messages, redone = [], []
    for interval in (1, 5, 20, 60):
        worst_msgs = worst_redo = 0
        for seed in range(3):
            result = run_protocol(
                "naive",
                n,
                t,
                interval=interval,
                adversary=KillActive(t - 1, actions_before_kill=3),
                seed=seed,
            )
            assert result.completed
            worst_msgs = max(worst_msgs, result.metrics.messages_total)
            worst_redo = max(worst_redo, result.metrics.redundant_work())
        messages.append(worst_msgs)
        redone.append(worst_redo)
    assert messages == sorted(messages, reverse=True)
    assert redone == sorted(redone)


def test_naive_lone_survivor():
    result = run_protocol(
        "naive", 40, 8, interval=4, adversary=all_but_one_dead(8), seed=4
    )
    assert result.completed
    assert result.metrics.work_by_process[7] == 40


def test_naive_random_battery():
    for seed in range(6):
        result = run_protocol(
            "naive",
            40,
            8,
            interval=5,
            adversary=RandomCrashes(7, max_action_index=20),
            seed=seed,
        )
        assert result.completed


def test_naive_rejects_bad_interval():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_protocol("naive", 10, 4, interval=0)


def test_naive_n_zero():
    result = run_protocol("naive", 0, 4, interval=1, seed=1)
    assert result.completed
