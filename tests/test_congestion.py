"""Per-process per-round congestion budgets: spec grammar, sync engine
deferral semantics, async engine windows, and end-to-end enforcement."""

import json
from collections import Counter
from typing import List, Optional

import pytest

from repro import run_protocol
from repro.api import Scenario
from repro.errors import ConfigurationError
from repro.sim.actions import Action, Envelope, MessageKind, Send, broadcast
from repro.sim.adversary import FixedSchedule
from repro.sim.congestion import (
    CongestionBudget,
    congestion_from_spec,
    normalize_congestion_spec,
)
from repro.sim.crashes import CrashDirective
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.trace import Trace


# ---- spec grammar ----------------------------------------------------


def test_normalize_accepts_string_dict_and_instance():
    from_string = normalize_congestion_spec("budget:send=4,receive=8")
    from_dict = normalize_congestion_spec(
        {"kind": "budget", "send": 4, "receive": 8}
    )
    from_instance = normalize_congestion_spec(CongestionBudget(send=4, receive=8))
    assert from_string == from_dict == from_instance
    assert from_string == {"kind": "budget", "send": 4, "receive": 8}
    assert normalize_congestion_spec(None) is None


def test_positional_send_shorthand():
    assert normalize_congestion_spec("budget:3") == {"kind": "budget", "send": 3}


def test_congestion_from_spec_builds_budget():
    budget = congestion_from_spec("budget:send=2")
    assert isinstance(budget, CongestionBudget)
    assert budget.send == 2 and budget.receive is None
    assert congestion_from_spec(None) is None


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("traffic-jam:3", "traffic-jam"),  # unknown kind, named
        ("budget:send=0", "0"),  # below minimum, value shown
        ("budget:send=-2", "-2"),
        ("budget:send=lots", "'lots'"),  # junk number, value shown
        ("budget:bandwidth=3", "bandwidth"),  # unknown parameter
        ("budget:", "send"),  # no budget at all names the knobs
        ({"kind": "budget"}, "send"),
        ({"kind": "budget", "receive": 0}, "0"),
        (3, "3"),  # bare numbers are not a spec
    ],
)
def test_malformed_congestion_specs_name_the_offending_value(spec, fragment):
    with pytest.raises(ConfigurationError) as excinfo:
        normalize_congestion_spec(spec)
    assert fragment in str(excinfo.value)


# ---- sync engine semantics -------------------------------------------


class Script(Process):
    """Runs fixed (wake, action) steps and records its inbox per round."""

    def __init__(self, pid, t, steps):
        super().__init__(pid, t)
        self.steps = list(steps)
        self.inboxes = []

    def wake_round(self) -> Optional[int]:
        if self.retired or not self.steps:
            return None
        return self.steps[0][0]

    def on_round(self, round_number: int, inbox: List[Envelope]) -> Action:
        self.inboxes.append((round_number, list(inbox)))
        if self.steps and self.steps[0][0] <= round_number:
            _, action = self.steps.pop(0)
            return action
        return Action.idle()


def pings(dst, count):
    return Action(
        sends=[Send(dst, ("ping", i), MessageKind.CONTROL) for i in range(count)]
    )


def arrivals(script):
    """round -> number of envelopes the script received that round."""
    return {r: len(inbox) for r, inbox in script.inboxes if inbox}


def test_send_budget_spreads_a_burst_over_rounds():
    sender = Script(0, 2, [(0, pings(1, 5)), (10, Action.halting())])
    receiver = Script(1, 2, [(100, Action.halting())])
    engine = Engine([sender, receiver], congestion=CongestionBudget(send=2))
    engine.run()
    # 5 copies at budget 2 depart over rounds 0,1,2 and land 1,2,3.
    assert arrivals(receiver) == {1: 2, 2: 2, 3: 1}


def test_send_budget_of_one_serializes_everything():
    sender = Script(0, 2, [(0, pings(1, 3)), (10, Action.halting())])
    receiver = Script(1, 2, [(100, Action.halting())])
    engine = Engine([sender, receiver], congestion=CongestionBudget(send=1))
    engine.run()
    assert arrivals(receiver) == {1: 1, 2: 1, 3: 1}


def test_receive_budget_throttles_fan_in():
    senders = [
        Script(pid, 4, [(0, pings(3, 1)), (10, Action.halting())])
        for pid in range(3)
    ]
    receiver = Script(3, 4, [(100, Action.halting())])
    engine = Engine(
        senders + [receiver], congestion=CongestionBudget(receive=1)
    )
    engine.run()
    # Three same-round copies drain one per round.
    assert arrivals(receiver) == {1: 1, 2: 1, 3: 1}


def test_deferred_sends_survive_the_senders_crash():
    sender = Script(0, 2, [(0, pings(1, 4)), (10, Action.halting())])
    receiver = Script(1, 2, [(100, Action.halting())])
    engine = Engine(
        [sender, receiver],
        congestion=CongestionBudget(send=1),
        adversary=FixedSchedule([CrashDirective(pid=0, at_round=1)]),
    )
    engine.run()
    # The wire already holds all four copies; the crash at round 1 kills
    # the sender, not its in-flight backlog.
    assert sum(arrivals(receiver).values()) == 4


class RecoveringScript(Script):
    """Script that accepts crash-recover faults; its "checkpoint" is the
    remaining step list, which the crash never touched."""

    supports_recovery = True

    def __init__(self, pid, t, steps):
        super().__init__(pid, t, steps)
        self.recovered_at = None

    def on_recover(self, round_number: int) -> None:
        self.recovered_at = round_number


def test_deferred_broadcast_segment_reaches_a_crash_recovered_recipient():
    # Budget 1 splits the broadcast {1,2,3} into per-round segments
    # 0:{1}, 1:{2}, 2:{3}.  Pid 3 crashes at round 0 and rejoins at
    # round 1 - strictly before its segment flushes at round 2 - so the
    # flush-time liveness restriction must see it alive again and
    # deliver its copy, not treat the crash-instant state as final.
    sender = Script(
        0,
        4,
        [
            (0, Action(sends=broadcast([1, 2, 3], "hello", MessageKind.CONTROL))),
            (10, Action.halting()),
        ],
    )
    receivers = [
        RecoveringScript(pid, 4, [(100, Action.halting())]) for pid in (1, 2, 3)
    ]
    engine = Engine(
        [sender] + receivers,
        congestion=CongestionBudget(send=1),
        adversary=FixedSchedule(
            [CrashDirective(pid=3, at_round=0, recover_after=1)]
        ),
    )
    engine.run()
    one, two, three = receivers
    assert three.recovered_at == 1
    assert arrivals(one) == {1: 1}
    assert arrivals(two) == {2: 1}
    # Flushed at round 2 (post-rejoin), landed at round 3.
    assert arrivals(three) == {3: 1}
    (envelope,) = [env for _, inbox in three.inboxes for env in inbox]
    assert envelope.src == 0 and envelope.payload == "hello"
    assert envelope.sent_round == 2


def test_uncongested_engine_unchanged_by_none_budget():
    def run(congestion):
        sender = Script(0, 2, [(0, pings(1, 5)), (10, Action.halting())])
        receiver = Script(1, 2, [(100, Action.halting())])
        Engine([sender, receiver], congestion=congestion).run()
        return arrivals(receiver)

    assert run(None) == {1: 5}
    assert run(congestion_from_spec("budget:send=8")) == {1: 5}  # under budget


# ---- end-to-end enforcement ------------------------------------------


def test_protocol_send_trace_never_exceeds_budget():
    budget = 2
    trace = Trace(enabled=True)
    result = run_protocol(
        "D", 40, 8, seed=7, congestion=f"budget:send={budget}", trace=trace
    )
    assert result.completed
    per_round_src = Counter(
        (event.round, event.pid) for event in trace.of_kind("send")
    )
    assert per_round_src  # the run did send messages
    assert max(per_round_src.values()) <= budget


def test_congestion_slows_but_preserves_completion():
    free = run_protocol("D", 40, 8, seed=7)
    jammed = run_protocol("D", 40, 8, seed=7, congestion="budget:send=1")
    assert free.completed and jammed.completed
    assert jammed.metrics.rounds > free.metrics.rounds
    # Every unit still gets done.
    assert jammed.metrics.work_by_unit.keys() == free.metrics.work_by_unit.keys()


def test_congested_runs_deterministic_under_seed():
    def run():
        return Scenario(
            protocol="D",
            n=48,
            t=6,
            seed=13,
            adversary="random:2,max_action_index=8",
            congestion="budget:send=2,receive=4",
        ).run()

    first, second = run(), run()
    assert first.metrics.as_dict() == second.metrics.as_dict()


def test_congestion_scenario_json_round_trip_reproduces_metrics():
    scenario = Scenario(
        protocol="D", n=48, t=6, seed=5, congestion="budget:send=2,receive=4"
    )
    data = scenario.to_dict()
    assert data["congestion"] == {"kind": "budget", "send": 2, "receive": 4}
    clone = Scenario.from_dict(json.loads(json.dumps(data)))
    assert scenario.run().metrics.as_dict() == clone.run().metrics.as_dict()


# ---- async engine ----------------------------------------------------


def test_async_congestion_completes_and_is_deterministic():
    def run(congestion):
        return Scenario(
            protocol="A-async",
            n=64,
            t=8,
            seed=5,
            congestion=congestion,
        ).run()

    first = run("budget:send=2,receive=3")
    second = run("budget:send=2,receive=3")
    assert first.completed
    assert first.metrics.as_dict() == second.metrics.as_dict()


def test_async_congestion_changes_the_schedule():
    free = Scenario(protocol="A-async", n=64, t=8, seed=5).run()
    jammed = Scenario(
        protocol="A-async", n=64, t=8, seed=5, congestion="budget:send=1"
    ).run()
    assert free.completed and jammed.completed
    assert free.metrics.as_dict() != jammed.metrics.as_dict()
