"""The unified Scenario API: serialization round-trips, spec parsing,
engine-aware registry, sweeps and the JSON result surface."""

import json

import pytest

import repro
from repro.api import ResultSet, Scenario, Sweep
from repro.core.registry import available_protocols, get_entry, run_protocol
from repro.errors import ConfigurationError
from repro.sim.adversary import (
    Adversary,
    KillActive,
    adversary_from_spec,
    normalize_adversary_spec,
)
from repro.sim.async_engine import delay_model_from_spec, normalize_delay_spec

# ---- acceptance: JSON round-trip reproduces the run exactly -----------------


def _small_sync_scenario(protocol: str) -> Scenario:
    options = {"interval": 4} if protocol == "naive" else {}
    n, t = (24, 6) if protocol.startswith("c") else (32, 8)
    return Scenario(
        protocol=protocol,
        n=n,
        t=t,
        adversary="random:2,max_action_index=8",
        seed=3,
        options=options,
    )


@pytest.mark.parametrize("protocol", available_protocols("sync"))
def test_sync_json_round_trip_reproduces_metrics(protocol):
    scenario = _small_sync_scenario(protocol)
    direct = scenario.run()
    revived = Scenario.from_json(scenario.to_json()).run()
    assert direct.metrics.as_dict() == revived.metrics.as_dict()
    assert direct.completed == revived.completed


@pytest.mark.parametrize("protocol", available_protocols("async"))
def test_async_json_round_trip_reproduces_metrics(protocol):
    scenario = Scenario(
        protocol=protocol,
        n=48,
        t=6,
        crash_times={1: 5.0, 2: 9.5},
        delay="uniform:0.5,3.0",
        failure_detector={"min_delay": 1.0, "max_delay": 4.0},
        seed=2,
    )
    direct = scenario.run()
    # Through actual JSON text: keys stringify and must come back as ints.
    revived = Scenario.from_dict(json.loads(scenario.to_json())).run()
    assert direct.metrics.as_dict() == revived.metrics.as_dict()
    assert direct.completed


def test_from_dict_equals_constructor():
    scenario = _small_sync_scenario("b")
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_scenario_file_round_trip(tmp_path):
    scenario = _small_sync_scenario("a")
    path = scenario.save(tmp_path / "scenario.json")
    assert Scenario.from_file(path) == scenario


def test_run_protocol_matches_scenario_run():
    # The thin wrapper and the declarative path account identically.
    wrapped = run_protocol(
        "B", 64, 8, adversary=KillActive(3, actions_before_kill=2), seed=5
    )
    declarative = Scenario(
        protocol="B",
        n=64,
        t=8,
        adversary="kill-active:3,actions_before_kill=2",
        seed=5,
    ).run()
    assert wrapped.metrics.as_dict() == declarative.metrics.as_dict()


# ---- RunResult.to_dict and the config echo ----------------------------------


def test_run_result_to_dict_shape():
    result = _small_sync_scenario("a").run()
    payload = result.to_dict()
    for key in ("completed", "survivors", "halted", "stalled", "metrics", "config"):
        assert key in payload
    assert payload["metrics"]["work"] == result.metrics.work_total
    assert payload["config"]["protocol"] == "a"
    assert payload["config"]["adversary"]["kind"] == "random"
    json.dumps(payload)  # JSON-safe end to end


def test_direct_run_protocol_has_no_config_echo():
    result = run_protocol("A", 16, 4, seed=0)
    assert result.config is None
    assert "config" not in result.to_dict()


def test_live_adversary_runs_but_does_not_serialize():
    scenario = Scenario(
        protocol="A", n=16, t=4, adversary=KillActive(2), seed=1
    )
    result = scenario.run()
    assert result.completed
    assert result.config is None  # cannot echo a live object
    with pytest.raises(ConfigurationError, match="not serializable"):
        scenario.to_dict()


def test_live_adversary_state_is_fresh_per_run():
    # Adversaries are stateful (budgets, countdowns); a scenario holding a
    # live instance must not hand later runs a spent one.
    scenario = Scenario(
        protocol="A", n=64, t=8, adversary=KillActive(5, actions_before_kill=2)
    )
    first = scenario.run()
    second = scenario.run()
    assert first.metrics.crashes == 5
    assert first.metrics.as_dict() == second.metrics.as_dict()
    sweep_crashes = [
        result.metrics.crashes
        for result in Sweep(base=scenario, seeds=range(3)).run().results
    ]
    assert sweep_crashes == [5, 5, 5]


# ---- spec parser errors ------------------------------------------------------


def test_unknown_adversary_kind_lists_known_kinds():
    with pytest.raises(ConfigurationError) as excinfo:
        adversary_from_spec("meteor-strike:3")
    message = str(excinfo.value)
    assert "meteor-strike" in message
    assert "kill-active" in message and "random" in message


def test_unknown_adversary_param_lists_accepted():
    with pytest.raises(ConfigurationError) as excinfo:
        adversary_from_spec("random:3,bogus=1")
    message = str(excinfo.value)
    assert "bogus" in message and "max_action_index" in message


def test_missing_required_param_is_named():
    with pytest.raises(ConfigurationError, match="count"):
        adversary_from_spec({"kind": "random"})


def test_bad_crash_phase_is_named():
    with pytest.raises(ConfigurationError, match="phase"):
        adversary_from_spec({"kind": "kill-active", "budget": 1, "phase": "sideways"})


def test_spec_builds_fresh_instances():
    spec = "kill-active:2"
    first, second = adversary_from_spec(spec), adversary_from_spec(spec)
    assert first is not second
    assert isinstance(first, Adversary)


def test_normalize_canonicalises_string_and_dict_forms():
    from_string = normalize_adversary_spec("random:5,max_action_index=25")
    from_dict = normalize_adversary_spec(
        {"kind": "RANDOM", "count": 5, "max_action_index": 25}
    )
    assert from_string == from_dict
    assert normalize_adversary_spec(None) is None
    assert normalize_adversary_spec("none") is None


def test_delay_spec_errors_and_round_trip():
    assert normalize_delay_spec("fixed:2") == {"kind": "fixed", "delay": 2.0}
    with pytest.raises(ConfigurationError, match="warp"):
        delay_model_from_spec("warp:9")
    with pytest.raises(ConfigurationError, match="low"):
        delay_model_from_spec({"kind": "uniform", "wrong": 1})
    # Junk numbers must surface as ConfigurationError, not bare ValueError.
    with pytest.raises(ConfigurationError, match="number"):
        delay_model_from_spec("uniform:abc")
    with pytest.raises(ConfigurationError, match="number"):
        delay_model_from_spec({"kind": "fixed", "delay": "soon"})


def test_unknown_scenario_field_is_rejected():
    with pytest.raises(ConfigurationError, match="wrong_field"):
        Scenario.from_dict({"protocol": "a", "n": 8, "t": 2, "wrong_field": 1})


def test_scenario_missing_required_fields():
    with pytest.raises(ConfigurationError, match="t"):
        Scenario.from_dict({"protocol": "a", "n": 8})


def test_unknown_fastpath_value_is_rejected_with_choices():
    for build in (
        lambda: Scenario(protocol="a", n=8, t=2, fastpath="turbo"),
        lambda: Scenario.from_dict(
            {"protocol": "a", "n": 8, "t": 2, "fastpath": "turbo"}
        ),
    ):
        with pytest.raises(ConfigurationError) as excinfo:
            build()
        message = str(excinfo.value)
        assert "fastpath" in message and "'turbo'" in message
        for choice in ("auto", "on", "off"):
            assert choice in message


def test_fastpath_round_trips_and_default_stays_implicit():
    explicit = Scenario(protocol="a", n=8, t=2, fastpath="off")
    assert explicit.to_dict()["fastpath"] == "off"
    assert Scenario.from_dict(explicit.to_dict()) == explicit
    assert "fastpath" not in Scenario(protocol="a", n=8, t=2).to_dict()


def test_fastpath_is_a_sync_engine_knob():
    with pytest.raises(ConfigurationError, match="sync"):
        Scenario(protocol="A-async", n=8, t=2, fastpath="off").run()


# ---- engine-aware registry ---------------------------------------------------


def test_registry_reports_both_engine_kinds():
    everything = available_protocols()
    assert "a" in everything and "a-async" in everything
    assert "a-async" in available_protocols("async")
    assert "a-async" not in available_protocols("sync")
    assert set(available_protocols()) == set(
        available_protocols("sync") + available_protocols("async")
    )


def test_entries_carry_engine_and_capability_metadata():
    assert get_entry("A").engine == "sync"
    assert get_entry("a-async").engine == "async"
    assert get_entry("a").single_active
    assert not get_entry("d").single_active


def test_run_protocol_rejects_async_entries_helpfully():
    with pytest.raises(ConfigurationError, match="[Ss]cenario"):
        run_protocol("A-async", 16, 4)


def test_engine_auto_resolves_from_registry():
    assert Scenario(protocol="A", n=8, t=2).resolved_engine == "sync"
    assert Scenario(protocol="A-async", n=8, t=2).resolved_engine == "async"
    with pytest.raises(ConfigurationError, match="sync"):
        Scenario(protocol="A", n=8, t=2, engine="async").resolved_engine


def test_engine_mismatched_fields_are_rejected():
    with pytest.raises(ConfigurationError, match="crash_times"):
        Scenario(protocol="A", n=8, t=2, crash_times={0: 1.0}).run()
    with pytest.raises(ConfigurationError, match="crash_times"):
        Scenario(protocol="A-async", n=8, t=2, adversary="random:1").run()


# ---- sweeps ------------------------------------------------------------------


def test_sweep_fans_out_seeds_and_adversaries():
    sweep = Sweep(
        base=Scenario(protocol="A", n=24, t=4),
        seeds=range(2),
        adversaries=[None, "random:2,max_action_index=6"],
    )
    results = sweep.run()
    assert len(results) == 4
    assert results.all_completed
    worst, mean = results.worst(), results.mean()
    assert worst["work"] >= 24
    assert worst["work"] >= mean["work"]
    json.dumps(results.as_dict())


def test_sweep_over_protocols_renders_table():
    sweep = Sweep(
        base=Scenario(protocol="A", n=24, t=4, seed=1),
        protocols=["A", "D"],
        adversaries=[None, "kill-active:2"],
    )
    table = sweep.run().table(reduce="worst")
    assert "| a" in table and "| d" in table
    assert "effort" in table


def test_sweep_serialization_round_trip():
    sweep = Sweep(
        base=Scenario(protocol="B", n=16, t=4),
        seeds=[0, 1],
        adversaries=["random:1"],
        protocols=["a", "b"],
    )
    revived = Sweep.from_json(sweep.to_json())
    assert revived.to_dict() == sweep.to_dict()
    assert [s.to_dict() for s in revived.scenarios()] == [
        s.to_dict() for s in sweep.scenarios()
    ]


def test_package_exports_scenario_surface():
    assert repro.Scenario is Scenario
    assert repro.Sweep is Sweep
    assert repro.ResultSet is ResultSet
