"""Randomized differential fuzz harness: fastpath on == off, bitwise.

The columnar engine path (``repro.sim.columnar``) claims *bit-identical*
behaviour to the pure-python path - same full metrics payloads, same
trace event streams, same RNG draw order - under every protocol and
fault kind.  This harness is the pin for that claim: a seeded stdlib
``random`` generator (no hypothesis) draws ~200 scenario configs across
all registered sync protocols x adversary specs (crash-recover, rack,
cascade-neighbours, congestion budgets included) and runs each twice,
``fastpath="off"`` vs ``fastpath="on"``, asserting equality of
``Metrics.as_dict(full=True)``, the trace stream and the run outcome.

On failure the reproducer ``Scenario`` JSON is printed in the assertion
message and written to ``fuzz-reproducer.json`` (the CI fuzz-smoke step
uploads it as an artifact).

Environment knobs (for CI pinning and local soak runs):

* ``REPRO_FUZZ_SEED``  - generator seed (default 20260808).
* ``REPRO_FUZZ_COUNT`` - number of scenarios (default 200).
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from pathlib import Path

import pytest

pytest.importorskip(
    "numpy", reason="fastpath='on' needs numpy; without it only the "
    "pure-python path exists, so there is nothing to differentiate"
)

from repro.api import Scenario  # noqa: E402
from repro.sim.trace import Trace  # noqa: E402

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260808"))
COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "200"))

REPRODUCER_PATH = Path("fuzz-reproducer.json")

#: Every sync protocol in the registry (the async engine has no
#: fastpath; Scenario rejects the field there, which test_api covers).
PROTOCOLS = (
    "A", "B", "C", "C-batched", "C-naive", "D", "D-dynamic", "D-recovery",
    "naive", "replicate",
)


def _adversary_for(rng: random.Random, protocol: str, t: int):
    """A random adversary spec valid for ``protocol`` (crash counts stay
    below t so no config needs allow_total_failure)."""
    budget = max(1, min(t - 1, rng.randint(1, 3)))
    if protocol == "D-recovery" and rng.random() < 0.7:
        # The recovery protocol is the only one accepting rejoin faults.
        kind = rng.choice(
            ("crash-recover", "crash-recover", "rack-recover", "cascade-recover")
        )
        if kind == "crash-recover":
            return (
                f"crash-recover:{budget},repair_delay={rng.randint(1, 4)}"
            )
        if kind == "rack-recover":
            return {
                "kind": "rack",
                "racks": 1,
                "group_size": budget,
                "recover_after": rng.randint(1, 4),
            }
        return {
            "kind": "cascade-neighbours",
            "origins": 1,
            "p": rng.choice((0.3, 0.7)),
            "budget": budget,
            "recover_after": rng.randint(1, 4),
        }
    roll = rng.random()
    if roll < 0.25:
        return None
    if roll < 0.55:
        spec = f"random:{budget}"
        if rng.random() < 0.5:
            spec += f",max_action_index={rng.randint(5, 30)}"
        return spec
    if roll < 0.70:
        return f"kill-active:{budget}"
    if roll < 0.85:
        return {"kind": "rack", "racks": 1, "group_size": budget}
    return {
        "kind": "cascade-neighbours",
        "origins": 1,
        "p": rng.choice((0.3, 0.7)),
        "budget": budget,
    }


def _random_config(rng: random.Random) -> dict:
    protocol = rng.choice(PROTOCOLS)
    # C's deadlines are exponential in n + t; keep its universe tiny so
    # the suite stays fast (fast-forward keeps the wall time bounded,
    # but the message volume still grows quickly).
    if protocol in ("C", "C-batched", "C-naive"):
        t = rng.randint(2, 4)
        n = rng.randint(4, 12)
    else:
        t = rng.randint(2, 10)
        n = rng.randint(4, 40)
    config: dict = {"protocol": protocol, "n": n, "t": t, "seed": rng.randint(0, 10**6)}
    adversary = _adversary_for(rng, protocol, t)
    if adversary is not None:
        config["adversary"] = adversary
    if rng.random() < 0.3:
        send = rng.randint(2, 6)
        receive = rng.randint(2, 8)
        config["congestion"] = f"budget:send={send},receive={receive}"
    options: dict = {}
    if protocol in ("D", "D-recovery") and rng.random() < 0.3:
        options["revert_threshold"] = rng.choice((0.3, 0.5, 0.9))
    if protocol == "D-dynamic":
        if rng.random() < 0.5:
            batches = rng.randint(1, 3)
            per_batch, remainder = divmod(n, batches)
            counts = [per_batch] * batches
            counts[0] += remainder
            gap = rng.randint(1, 6)
            spec = ",".join(
                f"{index * gap}x{count}"
                for index, count in enumerate(counts)
                if count
            )
            options["schedule"] = f"arrivals:{spec}"
        if rng.random() < 0.5:
            options["cycle_length"] = rng.randint(4, 12)
    if protocol == "naive" and rng.random() < 0.5:
        options["interval"] = rng.randint(1, 5)
    if options:
        config["options"] = options
    return config


def _run(scenario: Scenario, fastpath: str):
    """One run's full observable state (or the error it raised)."""
    variant = dataclasses.replace(scenario, fastpath=fastpath)
    trace = Trace(enabled=True)
    try:
        result = variant.run(trace=trace)
    except Exception as error:  # noqa: BLE001 - compared across paths
        return {"error": type(error).__name__, "message": str(error)}
    return {
        "metrics": result.metrics.as_dict(full=True),
        "trace": list(trace.events),
        "completed": result.completed,
        "survivors": result.survivors,
        "halted": result.halted,
    }


def test_differential_fuzz_fastpath_bit_identical():
    rng = random.Random(SEED)
    exercised = 0
    for index in range(COUNT):
        config = _random_config(rng)
        scenario = Scenario.from_dict(config)
        off = _run(scenario, "off")
        on = _run(scenario, "on")
        if on != off:
            reproducer = json.dumps(config, sort_keys=True)
            REPRODUCER_PATH.write_text(
                json.dumps(
                    {"seed": SEED, "index": index, "scenario": config},
                    indent=2,
                    sort_keys=True,
                )
            )
            raise AssertionError(
                f"fastpath divergence at scenario {index} (seed {SEED}); "
                f"reproducer Scenario JSON: {reproducer}"
            )
        if "error" not in off:
            exercised += 1
    # The generator must mostly produce *runnable* configs - a harness
    # where everything errors out symmetrically would prove nothing.
    assert exercised >= COUNT * 3 // 4, (
        f"only {exercised}/{COUNT} scenarios ran to completion; "
        "the generator drifted into degenerate configs"
    )
