#!/usr/bin/env python
"""The paper's motivating scenario: verify every reactor valve is closed.

"In controlling a nuclear reactor it may be crucial for a set of valves
to be closed before fuel is added. [...] we would like an algorithm that
guarantees that the work will be performed as long as at least one
process survives."

This example drives Protocol B with a hostile adversary that repeatedly
kills the controller that is currently doing the checking - right after
it senses a valve but before it can report (the paper's worst case for
redone work) - and narrates the takeover chain from the execution trace.

The run is one declarative :class:`repro.Scenario`; the trace is a
runtime observer passed to ``run()`` (deliberately not part of the
serialized scenario).

Run:  python examples/valve_shutdown.py
"""

from repro import Scenario
from repro.sim.trace import Trace
from repro.work.workloads import valve_shutdown


def main() -> None:
    n_valves, t_controllers = 48, 9
    spec = valve_shutdown(n_valves)
    print(f"Scenario: {spec.name} - {n_valves} valves, {t_controllers} controllers")
    print(f"example unit: {spec.describe_unit(7)!r}\n")

    scenario = Scenario(
        protocol="B",
        n=n_valves,
        t=t_controllers,
        adversary=f"kill-active:{t_controllers - 1},actions_before_kill=8",
        seed=11,
    )
    trace = Trace(enabled=True)
    result = scenario.run(trace=trace)

    print("Takeover chain (controller, takeover round):")
    for round_number, pid in trace.activations():
        print(f"  round {round_number:>5}: controller {pid} takes over as checker")
    crashes = trace.of_kind("crash")
    print(f"\n{len(crashes)} controllers were killed mid-task; despite that:")
    metrics = result.metrics
    assert result.completed, "valves were NOT all verified!"
    print(f"  all {n_valves} valves verified closed      : {result.completed}")
    print(f"  valve checks performed (with repeats)  : {metrics.work_total}")
    print(f"  repeated checks (lost to crashes)      : {metrics.redundant_work()}")
    print(f"  messages exchanged                     : {metrics.messages_total}")
    print(f"  rounds until everyone stood down       : {metrics.retire_round}")
    print(
        f"\nPaper guarantee (Thm 2.8): work <= 3n = {3 * n_valves}, "
        f"messages <= 10 t sqrt(t) = {10 * t_controllers * int(t_controllers ** 0.5)}, "
        f"rounds <= 3n + 8t = {3 * n_valves + 8 * t_controllers} "
        "(up to implementation slack)."
    )


if __name__ == "__main__":
    main()
