#!/usr/bin/env python
"""Quickstart: run each protocol on the same workload and compare.

The Do-All problem: ``t`` crash-prone processes must perform ``n``
idempotent units of work so that the work completes in every execution
with at least one survivor.  This script runs the paper's four protocols
and two straw-man baselines against the same adversary and prints the
paper's three complexity measures (work, messages, rounds) plus effort.

Run:  python examples/quickstart.py [n] [t]
"""

import sys

from repro import run_protocol
from repro.analysis.tables import render_table
from repro.sim.adversary import RandomCrashes


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    t = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    failures = t // 2
    print(f"Do-All: n={n} units, t={t} processes, {failures} random crashes\n")

    rows = []
    for protocol, options in [
        ("replicate", {}),
        ("naive", {"interval": 1}),
        ("A", {}),
        ("B", {}),
        ("C", {}),
        ("D", {}),
    ]:
        result = run_protocol(
            protocol,
            n,
            t,
            adversary=RandomCrashes(failures, max_action_index=20),
            seed=42,
            **options,
        )
        metrics = result.metrics
        rows.append(
            [
                protocol,
                metrics.work_total,
                metrics.messages_total,
                metrics.effort,
                float(metrics.retire_round),
                "yes" if result.completed else "NO",
            ]
        )

    print(
        render_table(
            ["protocol", "work", "messages", "effort", "rounds", "completed"],
            rows,
        )
    )
    print(
        "\nReading the table: the baselines burn Theta(t*n) effort (replicate in"
        "\nwork, the naive checkpointer in messages); Protocols A/B spend"
        "\nO(n + t^1.5) effort; C gets messages down to O(n + t log t) at an"
        "\nastronomical round count (simulated via deadline fast-forward); and D"
        "\nfinishes in ~n/t rounds by working in parallel, paying in messages."
    )


if __name__ == "__main__":
    main()
