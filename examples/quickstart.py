#!/usr/bin/env python
"""Quickstart: one declarative Scenario, fanned over every protocol.

The Do-All problem: ``t`` crash-prone processes must perform ``n``
idempotent units of work so that the work completes in every execution
with at least one survivor.  This script describes the workload *once*
as a :class:`repro.Scenario` - protocol, shape, adversary spec, seed -
then sweeps it across the paper's four protocols and two straw-man
baselines and prints the paper's three complexity measures (work,
messages, rounds) plus effort.

The scenario is plain data: ``scenario.to_json()`` is exactly what
``python -m repro run --scenario FILE`` accepts.

Run:  python examples/quickstart.py [n] [t]
"""

import sys

from repro import Scenario
from repro.analysis.tables import render_table

PROTOCOLS = [
    ("replicate", {}),
    ("naive", {"interval": 1}),
    ("A", {}),
    ("B", {}),
    ("C", {}),
    ("D", {}),
]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    t = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    failures = t // 2
    print(f"Do-All: n={n} units, t={t} processes, {failures} random crashes\n")

    base = Scenario(
        protocol="A",
        n=n,
        t=t,
        adversary=f"random:{failures},max_action_index=20",
        seed=42,
    )

    rows = []
    for protocol, options in PROTOCOLS:
        result = base.replace(protocol=protocol, options=options).run()
        metrics = result.metrics
        rows.append(
            [
                protocol,
                metrics.work_total,
                metrics.messages_total,
                metrics.effort,
                float(metrics.retire_round),
                "yes" if result.completed else "NO",
            ]
        )

    print(
        render_table(
            ["protocol", "work", "messages", "effort", "rounds", "completed"],
            rows,
        )
    )
    print("\nThe same run, addressable as data (python -m repro run --scenario):")
    print(base.to_json())


if __name__ == "__main__":
    main()
