#!/usr/bin/env python
"""Protocol A on an asynchronous network with a failure detector.

The paper notes (end of Section 2.1) that Protocol A's synchrony is used
only to detect failures, so it runs unchanged in a fully asynchronous
system given a sound and complete failure detector.  This example runs
the async variant over a jittery network (message delays 0.5x-6x the
compute step) while workstations drop out, and shows the effort profile
matches the synchronous protocol's bounds.

Async runs use the same declarative :class:`repro.Scenario` as sync
ones: the protocol name resolves to the async engine through the
registry, the delay model is a spec string, crashes are scheduled times,
and the whole thing round-trips through JSON like any other scenario.

Run:  python examples/async_grid.py
"""

import math

from repro import Scenario
from repro.analysis.tables import render_table


def main() -> None:
    n, t = 200, 25
    print(f"Async Do-All: n={n} units, t={t} processes, crash-prone network\n")

    base = Scenario(
        protocol="A-async",
        n=n,
        t=t,
        delay="uniform:0.5,6.0",
        failure_detector={"min_delay": 2.0, "max_delay": 10.0},
    )

    rows = []
    for label, crash_times, seed in [
        ("no failures", {}, 1),
        ("leader dies early", {0: 5.0}, 2),
        ("rolling failures", {pid: 4.0 + 11.0 * pid for pid in range(12)}, 3),
        ("mass failure at t=30", {pid: 30.0 for pid in range(t - 1)}, 4),
    ]:
        result = base.replace(crash_times=crash_times or None, seed=seed).run()
        assert result.completed, label
        metrics = result.metrics
        rows.append(
            [
                label,
                len(crash_times),
                metrics.work_total,
                metrics.messages_total,
                metrics.redundant_work(),
                "yes" if result.completed else "NO",
            ]
        )

    print(
        render_table(
            ["scenario", "crashes", "work", "messages", "redone units", "completed"],
            rows,
        )
    )
    work_bound = 3 * max(n, t)
    msg_bound = 9 * t * math.isqrt(t)
    print(
        f"\nTheorem 2.3 effort bounds still apply: work <= 3n' = {work_bound}, "
        f"messages <= 9 t sqrt(t) = {msg_bound}."
        "\nNo deadline arithmetic is used - takeovers fire purely on failure-"
        "\ndetector suspicion, and soundness (never suspecting a live or cleanly"
        "\nterminated process) preserves the one-active-process discipline."
    )


if __name__ == "__main__":
    main()
