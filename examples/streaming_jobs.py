#!/usr/bin/env python
"""Dynamic workload: jobs stream into different sites over time.

The paper's static model assumes the work pool is common knowledge at
round 0.  Its Section 4 remark (and U.S. Patent 5,513,354) sketches the
realistic variant: work arrives continuously at individual sites, and
agreement runs periodically to spread both the *existence* of new jobs
and the *completion* of old ones.  This example streams 60 jobs into an
8-site system while sites fail, and verifies the deliverable guarantee:
every job that arrived at a site that never crashed gets done.

The dynamic protocol's builder takes an arrival *schedule*, not a static
``(n, t)`` shape, so this example drives the engine directly; the crash
schedules are still declarative ``staggered`` adversary specs (the same
grammar Scenario files use).

Run:  python examples/streaming_jobs.py
"""

from repro.analysis.tables import render_table
from repro.core.protocol_d_dynamic import build_dynamic_protocol_d, uniform_arrivals
from repro.sim.adversary import adversary_from_spec
from repro.sim.engine import Engine
from repro.work.tracker import WorkTracker


def run_day(label, adversary_spec, seed):
    n_jobs, t_sites = 60, 8
    schedule = uniform_arrivals(n_jobs, t_sites, every=3)
    processes = build_dynamic_protocol_d(t_sites, schedule, cycle_length=14)
    tracker = WorkTracker(n_jobs)
    engine = Engine(
        processes,
        tracker=tracker,
        adversary=adversary_from_spec(adversary_spec),
        seed=seed,
    )
    result = engine.run()

    crashed = {p.pid for p in processes if p.crashed}
    deliverable = {
        unit for _, site, unit in schedule.arrivals if site not in crashed
    }
    missing = set(tracker.missing_units())
    lost_with_site = sorted(missing - deliverable)
    assert not (deliverable & missing), "a deliverable job was dropped!"
    return [
        label,
        len(crashed),
        tracker.total_executions(),
        len(missing),
        len(lost_with_site),
        result.metrics.messages_total,
        result.metrics.retire_round,
    ]


def main() -> None:
    print("Streaming Do-All: 60 jobs arriving over time at 8 sites\n")
    rows = [
        run_day("calm day", None, 1),
        run_day("one site dies", "staggered:3x2", 2),
        run_day("three sites die", "staggered:1x1+4x3+6x2", 3),
    ]
    print(
        render_table(
            [
                "day", "crashed sites", "executions", "jobs not done",
                "of which died with their site", "messages", "rounds",
            ],
            rows,
        )
    )
    print(
        "\nJobs can only be lost together with the *only* site that ever knew"
        "\nabout them (it crashed before the next agreement cycle) - the exact"
        "\nanalogue of the static model's process-crashing-before-reporting."
        "\nEverything a surviving site ever learned about gets done."
    )


if __name__ == "__main__":
    main()
