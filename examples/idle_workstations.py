#!/usr/bin/env python
"""Idle-workstation batch farm: Protocol D under machine reclamation.

The introduction's LAN scenario: batch jobs are distributed among idle
workstations, and a "failure" is a user reclaiming her machine.  Time
matters here (jobs should finish fast while machines are idle), so this
is Protocol D territory: work in parallel, agree on progress, and - if a
whole lab's worth of machines is reclaimed at once - fall back to the
sequential checkpointing protocol among whoever is left.

The example runs three mornings, each a :class:`repro.Scenario` whose
only difference is the ``staggered`` adversary spec (victims and the
number of units each performs before its machine is reclaimed):
  * a quiet one (nobody reclaims),
  * a normal one (a few machines reclaimed mid-phase),
  * a rush morning (most machines reclaimed at 9am sharp -> reversion).

Run:  python examples/idle_workstations.py
"""

from repro import Scenario
from repro.analysis.tables import render_table
from repro.sim.actions import MessageKind
from repro.work.workloads import idle_workstation_jobs


def morning(base, label, adversary, seed):
    result = base.replace(adversary=adversary, seed=seed).run()
    metrics = result.metrics
    reverted = (
        metrics.messages_of(MessageKind.PARTIAL_CHECKPOINT)
        + metrics.messages_of(MessageKind.FULL_CHECKPOINT)
    ) > 0
    return [
        label,
        metrics.crashes,
        metrics.work_total,
        metrics.messages_total,
        metrics.retire_round + 1,
        "yes" if reverted else "no",
        "yes" if result.completed else "NO",
    ]


def main() -> None:
    n_jobs, t_machines = 120, 12
    spec = idle_workstation_jobs(n_jobs)
    print(
        f"Scenario: {spec.name} - {n_jobs} batch jobs over {t_machines} idle "
        f"workstations (Protocol D)\n"
    )

    base = Scenario(protocol="D", n=n_jobs, t=t_machines)
    rows = [
        morning(base, "quiet morning", None, 1),
        morning(base, "normal morning (3 reclaimed)", "staggered:2x3+5x6+9x2", 2),
        morning(
            base,
            "rush morning (8 reclaimed at once)",
            {"kind": "staggered", "kills": [[pid, 1] for pid in range(8)]},
            3,
        ),
    ]
    print(
        render_table(
            ["morning", "reclaimed", "jobs run", "messages", "rounds",
             "reverted to Protocol A", "all jobs done"],
            rows,
        )
    )
    print(
        "\nQuiet mornings finish in n/t + 2 rounds with every job run exactly"
        "\nonce.  Losing a few machines costs one extra work phase per failure"
        "\nwave.  When more than half the machines vanish inside one phase, the"
        "\nsurvivors abandon phasing and finish the backlog with the sequential"
        "\ncheckpointing protocol (Theorem 4.1(2))."
    )


if __name__ == "__main__":
    main()
