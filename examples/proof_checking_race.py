#!/usr/bin/env python
"""Effort/time trade-off study on a proof-checking workload.

A 600-step formal proof must be re-verified by a pool of 25 machines
that fail at varying rates.  The four protocols sit at different points
of the paper's message/work/time trade-off; this example sweeps the
failure count and shows where each protocol's regime begins:

* few failures  -> Protocol D wins on time (n/t + O(f) rounds);
* effort-bound  -> Protocols A/B win on messages-vs-time balance;
* message-bound -> Protocol C wins outright (O(n + t log t) messages)
  if you can tolerate its (simulated) exponential round counts.

Each grid point is one declarative :class:`repro.Scenario`; the failure
axis just swaps the adversary spec string.

Run:  python examples/proof_checking_race.py
"""

from repro import Scenario
from repro.analysis.tables import render_table
from repro.work.workloads import proof_checking


def main() -> None:
    n, t = 600, 25
    spec = proof_checking(n)
    print(f"Scenario: {spec.name} - {n} proof steps over {t} checkers\n")

    base = Scenario(protocol="A", n=n, t=t, seed=17)
    rows = []
    for failures in [0, 4, 12, 24]:
        adversary = (
            f"random:{failures},max_action_index=30" if failures else None
        )
        for protocol in ["A", "B", "C", "D"]:
            result = base.replace(protocol=protocol, adversary=adversary).run()
            metrics = result.metrics
            rows.append(
                [
                    failures,
                    protocol,
                    metrics.work_total,
                    metrics.messages_total,
                    metrics.effort,
                    float(metrics.retire_round),
                    "yes" if result.completed else "NO",
                ]
            )
        rows.append(["-"] * 7)
    rows.pop()

    print(
        render_table(
            ["failures", "protocol", "work", "messages", "effort", "rounds", "done"],
            rows,
        )
    )
    print(
        "\nHow to read this: effort (work + messages) is nearly flat in the"
        "\nfailure count for all four protocols - that is the paper's point."
        "\nWhat varies is the *currency*: C pays time for messages, D pays"
        "\nmessages for time, A/B sit between.  Pick by which resource your"
        "\ndeployment actually bills."
    )


if __name__ == "__main__":
    main()
