#!/usr/bin/env python
"""Work that is not common knowledge: the Section 1 bootstrap.

Throughout the paper the pool of work is assumed common knowledge at
round 0.  Section 1 lifts that: "if even one process knows about this
work, then it can act as a general, run Byzantine agreement on the pool
of work using one of the three algorithms, and then the actual work is
performed by running the same algorithm a second time" - at most
doubling the cost when n = Omega(t).

This example gives only process 0 the job list (40 database ranges to
scan), runs the two stages over Protocol B, and prints the per-stage
costs - including the run where the only knower crashes halfway through
announcing the pool.  Both stages' crash schedules are declarative
adversary specs built with :func:`repro.sim.adversary.adversary_from_spec`.

Run:  python examples/unknown_pool_bootstrap.py
"""

from repro.agreement.bootstrap import run_with_unknown_pool
from repro.analysis.tables import render_table
from repro.sim.adversary import adversary_from_spec
from repro.work.workloads import database_scan

KNOWER_DIES_MID_ANNOUNCEMENT = {
    "kind": "fixed-schedule",
    "directives": [{"pid": 0, "at_round": 0, "phase": "during_send"}],
}


def main() -> None:
    t = 8
    spec = database_scan(40)
    pool = range(1, spec.n + 1)
    print(
        f"Scenario: {spec.name} - only process 0 knows the {spec.n}-range job "
        f"list; {t} processes total\n"
    )

    rows = []
    for label, spec1, spec2, seed in [
        ("all healthy", None, None, 1),
        (
            "crashes during both stages",
            "random:3,max_action_index=10,victims=1..6",
            "random:3,max_action_index=15",
            2,
        ),
        (
            "knower dies mid-announcement",
            KNOWER_DIES_MID_ANNOUNCEMENT,
            None,
            3,
        ),
    ]:
        outcome = run_with_unknown_pool(
            pool, t, protocol="B",
            adversary_stage1=adversary_from_spec(spec1),
            adversary_stage2=adversary_from_spec(spec2),
            seed=seed,
        )
        pool_size = len(outcome.agreed_pool or ())
        rows.append(
            [
                label,
                "yes" if outcome.pool_agreement else "NO",
                pool_size,
                outcome.stage1_messages,
                outcome.stage2_messages,
                outcome.stage2_work,
                "yes" if outcome.completed else "n/a",
            ]
        )

    print(
        render_table(
            [
                "run", "pool agreed", "agreed size", "stage-1 msgs",
                "stage-2 msgs", "stage-2 work", "agreed work done",
            ],
            rows,
        )
    )
    print(
        "\nWhen the sole knower dies mid-announcement, the survivors still"
        "\n*agree* - possibly on a partial or empty pool (validity only binds a"
        "\ncorrect general), mirroring the static model: work nobody surviving"
        "\nknows about cannot be guaranteed.  In all cases total cost stays"
        "\nwithin about twice the single-stage cost, as Section 1 claims."
    )


if __name__ == "__main__":
    main()
