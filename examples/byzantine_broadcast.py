#!/usr/bin/env python
"""Byzantine agreement from work protocols (Section 5).

The general tries to inform senders 0..t of its value; the t+1 senders
then treat "make sure process p knows the value" as the p-th unit of
work and run a Do-All protocol on it.  Since at least one sender
survives, every process is informed; the protocols' takeover discipline
guarantees everyone ends up with the *same* value even when the general
crashes mid-broadcast (the classic hard case).

The nasty crash schedule is written as a declarative adversary spec (the
same grammar ``Scenario`` files and the ``--adversary`` CLI flag use): a
``compose`` of a ``fixed-schedule`` directive killing the general during
its round-0 broadcast, plus ``random`` crashes among the other senders.

Run:  python examples/byzantine_broadcast.py
"""

from repro.agreement.byzantine import ByzantineAgreement
from repro.analysis.tables import render_table
from repro.sim.adversary import adversary_from_spec


def main() -> None:
    n_system, t = 24, 7
    value = 42
    print(
        f"Byzantine agreement: {n_system} processes, general value {value}, "
        f"up to {t} crash failures, {t + 1} senders\n"
    )

    adversary_spec = {
        "kind": "compose",
        "parts": [
            {
                "kind": "fixed-schedule",
                "directives": [{"pid": 0, "at_round": 0, "phase": "during_send"}],
            },
            {
                "kind": "random",
                "count": t - 1,
                "max_action_index": 10,
                "victims": list(range(1, t + 1)),
            },
        ],
    }

    rows = []
    for protocol in ["A", "B", "C"]:
        # The nasty schedule: the general crashes mid-broadcast (an
        # arbitrary subset of senders is informed), and more senders die
        # at random points of the work protocol.
        ba = ByzantineAgreement(n_system, t, protocol=protocol)
        outcome = ba.run(value, adversary=adversary_from_spec(adversary_spec), seed=9)
        decided = sorted(set(outcome.decisions.values()))
        rows.append(
            [
                protocol,
                outcome.metrics.messages_total,
                len(outcome.decisions),
                "yes" if outcome.agreement else "NO",
                decided[0] if len(decided) == 1 else decided,
            ]
        )
        assert outcome.agreement, f"agreement violated via protocol {protocol}"

    print(
        render_table(
            ["work protocol", "messages", "deciders", "agreement", "decided value"],
            rows,
        )
    )
    print(
        "\nWith the general dead mid-broadcast, validity places no constraint -"
        "\nbut all surviving processes still decide the *same* value.  Note the"
        "\npiggybacking rules: A and B must NOT carry the value in checkpoints,"
        "\nwhile C MUST carry it in its ordinary messages (Section 5's proof"
        "\nbreaks in both directions otherwise).  Via Protocol C this is an"
        "\nO(n + t log t)-message agreement protocol, beating Bracha's"
        "\nnonconstructive O(n + t^1.5) bound."
    )


if __name__ == "__main__":
    main()
